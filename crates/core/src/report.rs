//! The report layer: sweep results → paper-style SVG figures.
//!
//! Every output surface in this workspace speaks the same JSONL row
//! shape ([`crate::batch::BatchReport::jsonl`], the server's `results`
//! stream, captured files on disk). This module renders those rows as
//! the paper's two figure families:
//!
//! * **maps** — a [`GridMap`] heat map of one point's per-node probe
//!   tallies on the torus (Figure 2's corrupted-intake map), with the
//!   source and Byzantine cells styled and the scenario's declared
//!   `[probes]` cells called out by value in the caption;
//! * **charts** — a [`LineChart`] of one outcome field across the
//!   sweep (the `m ∈ (m0, 2m0)` flip region, reliability vs rate),
//!   one series per combination of the non-x axes.
//!
//! Rendering is fully deterministic: identical rows and spec produce
//! identical bytes, so figures are hash-pinned in CI exactly like the
//! Figure 2 numbers ([`figure_hash`]).
//!
//! Two entry points: [`render_scenario`] runs (or cache-replays,
//! through a [`BatchOptions`] store) a scenario file and renders it —
//! map figures re-run the sweep with probes expanded to **every** cell
//! so the heat map covers the torus; [`render_jsonl`] renders rows
//! captured earlier, inferring the torus dimensions from the probe
//! cells unless a [`MapDecor`] provides them.
//!
//! # Example
//!
//! ```
//! use bftbcast::report::{render_scenario, ReportSpec};
//! use bftbcast::{BatchOptions, ScenarioFile};
//!
//! let file = ScenarioFile::parse(concat!(
//!     "name = \"demo\"\n",
//!     "[topology]\nside = 15\nr = 1\n",
//!     "[faults]\nt = 1\nmf = 4\n",
//!     "[placement]\nkind = \"lattice\"\n",
//!     "[protocol]\nkind = \"starved\"\nm = 4\n",
//!     "[sweep]\nm = [2, 4, 8]\n",
//! ))
//! .unwrap();
//! // A sweep auto-selects a chart: coverage vs m, flipping at m0.
//! let out = render_scenario(&file, &ReportSpec::default(), &BatchOptions::default()).unwrap();
//! let figure = &out.figures[0];
//! assert_eq!(figure.name, "demo-chart");
//! assert!(figure.svg.starts_with("<svg"));
//! assert!(figure.svg.contains("coverage"));
//! ```

use bftbcast_viz::map::{CellStyle, GridMap};
use bftbcast_viz::LineChart;

use crate::batch::{run_file_with, BatchOptions};
use crate::json::Json;
use crate::scenario::ScenarioError;
use crate::scenario_file::ScenarioFile;

/// Which figure family to render.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FigureKind {
    /// Decide from the data: a sweep renders a chart, a single point a
    /// map.
    #[default]
    Auto,
    /// A per-node heat map of one point ([`GridMap`]).
    Map,
    /// An outcome field across the sweep ([`LineChart`]).
    Chart,
}

impl FigureKind {
    /// The spec vocabulary's name for this kind.
    pub fn name(self) -> &'static str {
        match self {
            FigureKind::Auto => "auto",
            FigureKind::Map => "map",
            FigureKind::Chart => "chart",
        }
    }

    /// The inverse of [`FigureKind::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "auto" => FigureKind::Auto,
            "map" => FigureKind::Map,
            "chart" => FigureKind::Chart,
            _ => return None,
        })
    }
}

/// The probe fields a map can color by.
pub const MAP_FIELDS: &[&str] = &["intake", "tally_true", "tally_wrong", "decided_neighbors"];

/// What to render and how — the typed form of the CLI's `report`
/// flags and the server's `report` request fields.
#[derive(Debug, Clone, PartialEq)]
pub struct ReportSpec {
    /// Figure family (default: decide from the data).
    pub figure: FigureKind,
    /// Map: the probe field to color by (one of [`MAP_FIELDS`],
    /// default `intake`). Chart: the outcome field to plot (default
    /// `coverage`, or `agreement` for the agreement engine).
    pub field: Option<String>,
    /// Chart: which sweep axis is the x axis (default: the first).
    pub x_axis: Option<String>,
    /// Chart: plot the x axis on a log10 scale (budget sweeps spanning
    /// decades). Points with a non-positive x are dropped by the
    /// renderer.
    pub log_x: bool,
    /// Map: which sweep point to render (index in sweep order).
    pub point: usize,
    /// Map: cell size in SVG user units.
    pub cell_px: u32,
}

impl Default for ReportSpec {
    fn default() -> Self {
        ReportSpec {
            figure: FigureKind::Auto,
            field: None,
            x_axis: None,
            log_x: false,
            point: 0,
            cell_px: 10,
        }
    }
}

impl ReportSpec {
    /// Reads the optional `figure` / `field` / `x` / `log_x` / `point`
    /// / `cell` fields of a protocol request object (absent fields keep
    /// their defaults) — the wire form of the server's `report`
    /// command.
    ///
    /// # Errors
    ///
    /// A user-facing description of the first mistyped field.
    pub fn from_json_fields(doc: &Json) -> Result<ReportSpec, String> {
        let mut spec = ReportSpec::default();
        if let Some(figure) = doc.get("figure") {
            let name = figure
                .as_str()
                .ok_or("\"figure\" must be a string (auto|map|chart)")?;
            spec.figure = FigureKind::from_name(name)
                .ok_or_else(|| format!("unknown figure {name:?} (auto|map|chart)"))?;
        }
        if let Some(field) = doc.get("field") {
            spec.field = Some(
                field
                    .as_str()
                    .ok_or("\"field\" must be a string")?
                    .to_string(),
            );
        }
        if let Some(x) = doc.get("x") {
            spec.x_axis = Some(x.as_str().ok_or("\"x\" must be a string")?.to_string());
        }
        if let Some(log_x) = doc.get("log_x") {
            spec.log_x = log_x.as_bool().ok_or("\"log_x\" must be a boolean")?;
        }
        if let Some(point) = doc.get("point") {
            spec.point = point
                .as_u64()
                .ok_or("\"point\" must be a non-negative integer")?
                as usize;
        }
        if let Some(cell) = doc.get("cell") {
            let cell = cell.as_u64().ok_or("\"cell\" must be a positive integer")?;
            if cell == 0 || cell > 64 {
                return Err("\"cell\" must lie in 1..=64".to_string());
            }
            spec.cell_px = cell as u32;
        }
        Ok(spec)
    }
}

/// One rendered figure.
#[derive(Debug, Clone, PartialEq)]
pub struct Figure {
    /// The figure's file stem, `<scenario-name>-<map|chart>`.
    pub name: String,
    /// The complete SVG document.
    pub svg: String,
}

/// A [`render_scenario`] result: the figures plus the run's cache
/// counters (a warm store answers with `cache_hits` equal to the point
/// count and renders without simulating).
#[derive(Debug, Clone)]
pub struct ReportOutput {
    /// The rendered figures (currently always exactly one).
    pub figures: Vec<Figure>,
    /// Points answered from the outcome store.
    pub cache_hits: usize,
    /// Points that ran an engine.
    pub cache_misses: usize,
}

/// Torus styling information a JSONL row stream cannot carry: the
/// dimensions, the source cell, the Byzantine cells, and the
/// scenario's declared probe cells (rendered as callouts). Built from
/// a scenario file by [`MapDecor::from_file`]; the pure-rows path
/// ([`render_jsonl`] with `None`) infers dimensions from the probe
/// cells and styles nothing.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MapDecor {
    /// Torus width.
    pub width: u32,
    /// Torus height.
    pub height: u32,
    /// The base station's cell, styled gold with an `S`.
    pub source: Option<(u32, u32)>,
    /// Byzantine cells, styled black.
    pub bad: Vec<(u32, u32)>,
    /// Declared probe cells: marked `+` and listed by value in the
    /// caption (the Figure 2 goldens workflow).
    pub callouts: Vec<(u32, u32)>,
}

impl MapDecor {
    /// Styling information for one sweep point of a scenario file. The
    /// Byzantine cells come from actually building the point's
    /// placement; a placement that fails to build (it would also have
    /// failed the run) simply leaves them unstyled.
    pub fn from_file(file: &ScenarioFile, point: usize) -> MapDecor {
        let base = file.base();
        let mut decor = MapDecor {
            width: base.width,
            height: base.height,
            source: Some(base.source),
            bad: Vec::new(),
            callouts: file.probes.clone(),
        };
        let points = file.points();
        if let Some(spec) = points.get(point) {
            if let Ok(scenario) = spec.build_scenario() {
                let grid = scenario.grid();
                decor.source = Some({
                    let c = grid.coord_of(scenario.source());
                    (c.x, c.y)
                });
                decor.bad = scenario
                    .bad_nodes()
                    .iter()
                    .map(|&id| {
                        let c = grid.coord_of(id);
                        (c.x, c.y)
                    })
                    .collect();
            }
        }
        decor
    }
}

/// The stable content hash figures are pinned by in CI: FNV-1a 64 over
/// the SVG bytes (the same hash the outcome store keys with).
pub fn figure_hash(svg: &str) -> u64 {
    bftbcast_store::canon::fnv1a(svg.as_bytes())
}

fn invalid(what: &str, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid {
        what: what.to_string(),
        message: message.into(),
    }
}

/// One probe row, decoded from the JSONL shape.
struct ProbeRow {
    x: u32,
    y: u32,
    tally_true: u64,
    tally_wrong: u64,
    decided_neighbors: u64,
}

impl ProbeRow {
    fn field(&self, name: &str) -> u64 {
        match name {
            "intake" => self.tally_true + self.tally_wrong,
            "tally_true" => self.tally_true,
            "tally_wrong" => self.tally_wrong,
            "decided_neighbors" => self.decided_neighbors,
            _ => unreachable!("validated against MAP_FIELDS"),
        }
    }
}

/// One result row, decoded from the JSONL shape.
struct Row {
    point: Vec<(String, String)>,
    outcome: Json,
    probes: Vec<ProbeRow>,
}

/// Decodes a JSONL row stream into `(scenario name, rows)`.
fn parse_rows(text: &str) -> Result<(String, Vec<Row>), ScenarioError> {
    let mut name = String::from("rows");
    let mut rows = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let bad = |message: String| invalid("rows", format!("line {}: {message}", i + 1));
        let doc = Json::parse(line).map_err(|e| bad(format!("malformed JSON: {e}")))?;
        if rows.is_empty() {
            if let Some(n) = doc.get("scenario").and_then(Json::as_str) {
                name = n.to_string();
            }
        }
        let point = match doc.get("point") {
            Some(Json::Obj(fields)) => fields
                .iter()
                .map(|(axis, value)| {
                    let rendered = match value {
                        Json::Num(raw) => raw.clone(),
                        Json::Str(s) => s.clone(),
                        other => format!("{other:?}"),
                    };
                    (axis.clone(), rendered)
                })
                .collect(),
            _ => Vec::new(),
        };
        let outcome = doc
            .get("outcome")
            .cloned()
            .ok_or_else(|| bad("row lacks an \"outcome\" object".to_string()))?;
        let mut probes = Vec::new();
        if let Some(items) = doc.get("probes").and_then(Json::as_array) {
            for item in items {
                let cell = |key: &str| -> Result<u64, ScenarioError> {
                    item.get(key)
                        .and_then(Json::as_u64)
                        .ok_or_else(|| bad(format!("probe entry lacks integer {key:?}")))
                };
                probes.push(ProbeRow {
                    x: cell("x")? as u32,
                    y: cell("y")? as u32,
                    tally_true: cell("tally_true")?,
                    tally_wrong: cell("tally_wrong")?,
                    decided_neighbors: cell("decided_neighbors")?,
                });
            }
        }
        rows.push(Row {
            point,
            outcome,
            probes,
        });
    }
    if rows.is_empty() {
        return Err(invalid("rows", "no result rows to render"));
    }
    Ok((name, rows))
}

/// `<scenario-name>-<kind>` with anything outside `[a-z0-9._-]`
/// flattened to `-` (the stem is a file name and a wire identifier).
fn figure_name(scenario: &str, kind: &str) -> String {
    let mut stem = String::with_capacity(scenario.len());
    for c in scenario.chars() {
        match c.to_ascii_lowercase() {
            c if c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-') => stem.push(c),
            _ => stem.push('-'),
        }
    }
    if stem.is_empty() {
        stem.push_str("scenario");
    }
    format!("{stem}-{kind}")
}

/// A one-line human summary of an outcome object, by `kind`.
fn outcome_caption(outcome: &Json) -> String {
    let field = |key: &str| -> String {
        match outcome.get(key) {
            Some(Json::Num(raw)) => raw.clone(),
            Some(Json::Bool(b)) => b.to_string(),
            _ => "?".to_string(),
        }
    };
    match outcome.get("kind").and_then(Json::as_str) {
        Some("counting") => format!(
            "outcome: accepted_true {}, waves {}, coverage {}",
            field("accepted_true"),
            field("waves"),
            field("coverage"),
        ),
        Some("reactive") => format!(
            "outcome: committed_true {}, rounds {}, coverage {}",
            field("committed_true"),
            field("rounds"),
            field("coverage"),
        ),
        Some("agreement") => format!(
            "outcome: members {}, validity {}, agreement {}",
            field("members"),
            field("validity"),
            field("agreement"),
        ),
        _ => "outcome: ?".to_string(),
    }
}

fn render_map(
    scenario: &str,
    rows: &[Row],
    spec: &ReportSpec,
    decor: Option<&MapDecor>,
) -> Result<Figure, ScenarioError> {
    let row = rows.get(spec.point).ok_or_else(|| {
        invalid(
            "point",
            format!("point {} is out of range ({} rows)", spec.point, rows.len()),
        )
    })?;
    let field = spec.field.as_deref().unwrap_or("intake");
    if !MAP_FIELDS.contains(&field) {
        return Err(invalid(
            "field",
            format!(
                "unknown map field {field:?} (known: {})",
                MAP_FIELDS.join(", ")
            ),
        ));
    }
    if row.probes.is_empty() {
        return Err(invalid(
            "rows",
            "a map needs probe rows; the selected point has none",
        ));
    }
    let (width, height) = match decor {
        Some(d) => (d.width, d.height),
        None => {
            // Pure-rows path: the smallest torus containing every probe.
            let w = row.probes.iter().map(|p| p.x).max().unwrap_or(0) + 1;
            let h = row.probes.iter().map(|p| p.y).max().unwrap_or(0) + 1;
            (w, h)
        }
    };
    for p in &row.probes {
        if p.x >= width || p.y >= height {
            return Err(invalid(
                "rows",
                format!("probe ({}, {}) is off the {width}x{height} torus", p.x, p.y),
            ));
        }
    }
    let id = |x: u32, y: u32| -> usize { y as usize * width as usize + x as usize };

    let max = row.probes.iter().map(|p| p.field(field)).max().unwrap_or(0);
    let mut map = GridMap::with_dims(width, height, spec.cell_px);
    for p in &row.probes {
        let v = p.field(field);
        let t = if max == 0 { 0.0 } else { v as f64 / max as f64 };
        map.set(id(p.x, p.y), CellStyle::heat(t));
    }
    let mut caption = Vec::new();
    if let Some(d) = decor {
        for &(x, y) in &d.bad {
            if x < width && y < height {
                map.set(id(x, y), CellStyle::bad());
            }
        }
        if let Some((x, y)) = d.source {
            if x < width && y < height {
                map.set(id(x, y), CellStyle::source());
            }
        }
        for &(x, y) in &d.callouts {
            if x < width && y < height {
                map.mark(id(x, y), '+');
            }
            if let Some(p) = row.probes.iter().find(|p| (p.x, p.y) == (x, y)) {
                caption.push(format!(
                    "probe ({x}, {y}): intake {}, true {}, wrong {}",
                    p.tally_true + p.tally_wrong,
                    p.tally_true,
                    p.tally_wrong,
                ));
            }
        }
    }
    caption.push(outcome_caption(&row.outcome));
    caption.push(heat_legend(field, max));

    let point_suffix = if row.point.is_empty() {
        String::new()
    } else {
        let labels: Vec<String> = row.point.iter().map(|(a, v)| format!("{a}={v}")).collect();
        format!(" ({})", labels.join(", "))
    };
    let title = format!("{scenario} - {field} heat map{point_suffix}");
    Ok(Figure {
        name: figure_name(scenario, "map"),
        svg: map.render_with_caption(&title, &caption),
    })
}

/// The heat-map legend line with quartile tick values, so a reader can
/// place an intermediate shade without interpolating by eye:
/// `heat: intake 0 (light) | 531 | 1062 | 1593 | 2124 (dark)`. A map
/// whose field is all zero keeps the degenerate two-end form.
fn heat_legend(field: &str, max: u64) -> String {
    if max == 0 {
        return format!("heat: {field} 0 (light) to 0 (dark)");
    }
    let ticks: Vec<String> = (1..4).map(|i| (i * max / 4).to_string()).collect();
    format!(
        "heat: {field} 0 (light) | {} | {max} (dark)",
        ticks.join(" | ")
    )
}

/// The chart fields an outcome object offers: every numeric or boolean
/// key (booleans plot as 0/1).
fn chart_value(outcome: &Json, field: &str) -> Option<f64> {
    match outcome.get(field) {
        Some(Json::Num(raw)) => raw.parse().ok(),
        Some(Json::Bool(b)) => Some(if *b { 1.0 } else { 0.0 }),
        _ => None,
    }
}

fn chart_fields(outcome: &Json) -> Vec<String> {
    match outcome {
        Json::Obj(fields) => fields
            .iter()
            .filter(|(_, v)| matches!(v, Json::Num(_) | Json::Bool(_)))
            .map(|(k, _)| k.clone())
            .collect(),
        _ => Vec::new(),
    }
}

fn render_chart(scenario: &str, rows: &[Row], spec: &ReportSpec) -> Result<Figure, ScenarioError> {
    let first = &rows[0];
    if first.point.is_empty() {
        return Err(invalid(
            "rows",
            "a chart needs sweep axes; these rows have no point labels \
             (render a map instead)",
        ));
    }
    let x_axis = match &spec.x_axis {
        Some(axis) => {
            if !first.point.iter().any(|(a, _)| a == axis) {
                let axes: Vec<&str> = first.point.iter().map(|(a, _)| a.as_str()).collect();
                return Err(invalid(
                    "x",
                    format!("unknown axis {axis:?} (axes: {})", axes.join(", ")),
                ));
            }
            axis.clone()
        }
        None => first.point[0].0.clone(),
    };
    let field = match &spec.field {
        Some(field) => field.clone(),
        None => match first.outcome.get("kind").and_then(Json::as_str) {
            Some("agreement") => "agreement".to_string(),
            _ => "coverage".to_string(),
        },
    };
    if chart_value(&first.outcome, &field).is_none() {
        return Err(invalid(
            "field",
            format!(
                "outcome has no numeric field {field:?} (known: {})",
                chart_fields(&first.outcome).join(", ")
            ),
        ));
    }

    // One series per combination of the non-x axes, in first-appearance
    // order (deterministic: rows arrive in sweep order).
    let mut series: Vec<(String, Vec<(f64, f64)>)> = Vec::new();
    for (i, row) in rows.iter().enumerate() {
        let bad = |message: String| invalid("rows", format!("row {}: {message}", i + 1));
        let x_raw = row
            .point
            .iter()
            .find(|(a, _)| *a == x_axis)
            .map(|(_, v)| v.clone())
            .ok_or_else(|| bad(format!("row lacks the {x_axis:?} axis")))?;
        let x: f64 = x_raw
            .parse()
            .map_err(|_| bad(format!("axis value {x_raw:?} is not a number")))?;
        let y = chart_value(&row.outcome, &field)
            .ok_or_else(|| bad(format!("outcome lacks numeric field {field:?}")))?;
        let key = {
            let rest: Vec<String> = row
                .point
                .iter()
                .filter(|(a, _)| *a != x_axis)
                .map(|(a, v)| format!("{a}={v}"))
                .collect();
            if rest.is_empty() {
                field.clone()
            } else {
                rest.join(", ")
            }
        };
        match series.iter_mut().find(|(name, _)| *name == key) {
            Some((_, points)) => points.push((x, y)),
            None => series.push((key, vec![(x, y)])),
        }
    }

    let mut chart = LineChart::new(format!("{scenario} - {field} vs {x_axis}"), &x_axis, &field);
    if spec.log_x {
        chart = chart.with_log_x();
    }
    for (name, points) in &series {
        chart.series(name.clone(), points);
    }
    Ok(Figure {
        name: figure_name(scenario, "chart"),
        svg: chart.render(),
    })
}

/// Renders one figure from a captured JSONL row stream (the output of
/// `run --scenario`, `results`, or [`crate::batch::BatchReport::jsonl`]).
/// `decor` supplies torus styling a row stream cannot carry; without
/// it, map dimensions are inferred from the probe cells and no cells
/// are styled.
///
/// # Errors
///
/// [`ScenarioError::Invalid`] for malformed rows, an unknown field or
/// axis, an out-of-range point, or rows that cannot support the
/// requested figure (a chart without sweep axes, a map without
/// probes).
pub fn render_jsonl(
    rows_text: &str,
    spec: &ReportSpec,
    decor: Option<&MapDecor>,
) -> Result<Figure, ScenarioError> {
    let (scenario, rows) = parse_rows(rows_text)?;
    let kind = match spec.figure {
        FigureKind::Auto => {
            if rows.len() > 1 && !rows[0].point.is_empty() {
                FigureKind::Chart
            } else {
                FigureKind::Map
            }
        }
        kind => kind,
    };
    match kind {
        FigureKind::Map => render_map(&scenario, &rows, spec, decor),
        FigureKind::Chart => render_chart(&scenario, &rows, spec),
        FigureKind::Auto => unreachable!("resolved above"),
    }
}

/// Runs a scenario file (through the batch runner, honoring the
/// [`BatchOptions`] store and worker cap) and renders one figure.
///
/// Map figures run **only** the selected sweep point
/// ([`ReportSpec::point`]), with `[probes]` expanded to every cell of
/// the torus so the heat map covers the whole grid; the dense probe
/// list is its own cache identity (probes are part of the content
/// key), so the first map render computes even over a store warmed by
/// plain runs — and every subsequent one replays with
/// `cache_hits == points`. Chart figures run the file exactly as
/// written and share cache entries with `run --scenario`.
///
/// # Errors
///
/// Any [`ScenarioError`] from the run, plus the [`render_jsonl`]
/// validation errors.
pub fn render_scenario(
    file: &ScenarioFile,
    spec: &ReportSpec,
    options: &BatchOptions<'_>,
) -> Result<ReportOutput, ScenarioError> {
    let kind = match spec.figure {
        FigureKind::Auto => {
            if file.points().len() > 1 {
                FigureKind::Chart
            } else {
                FigureKind::Map
            }
        }
        kind => kind,
    };
    let (run_file, render_spec, decor) = match kind {
        FigureKind::Map => {
            let mut single = file.single_point(spec.point).ok_or_else(|| {
                invalid(
                    "point",
                    format!(
                        "point {} is out of range ({} points)",
                        spec.point,
                        file.points().len()
                    ),
                )
            })?;
            let (width, height) = (single.base().width, single.base().height);
            single.probes = (0..height)
                .flat_map(|y| (0..width).map(move |x| (x, y)))
                .collect();
            let decor = MapDecor::from_file(file, spec.point);
            // The run holds exactly the selected point, so the
            // renderer reads row 0.
            let render_spec = ReportSpec {
                figure: kind,
                point: 0,
                ..spec.clone()
            };
            (single, render_spec, Some(decor))
        }
        _ => (
            file.clone(),
            ReportSpec {
                figure: kind,
                ..spec.clone()
            },
            None,
        ),
    };
    let report = run_file_with(&run_file, options)?;
    let figure = render_jsonl(&report.jsonl(), &render_spec, decor.as_ref())?;
    Ok(ReportOutput {
        figures: vec![figure],
        cache_hits: report.cache_hits,
        cache_misses: report.cache_misses,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI_SWEEP: &str = concat!(
        "name = \"mini\"\n",
        "[topology]\nside = 15\nr = 1\n",
        "[faults]\nt = 1\nmf = 4\n",
        "[placement]\nkind = \"lattice\"\n",
        "[protocol]\nkind = \"starved\"\nm = 4\n",
        "[sweep]\nm = [2, 8]\n",
    );

    const MINI_POINT: &str = concat!(
        "name = \"mini\"\n",
        "[topology]\nside = 15\nr = 1\n",
        "[faults]\nt = 1\nmf = 4\n",
        "[placement]\nkind = \"lattice\"\n",
        "[protocol]\nkind = \"starved\"\nm = 8\n",
        "[probes]\nnodes = [[3, 3]]\n",
    );

    fn render(text: &str, spec: &ReportSpec) -> ReportOutput {
        let file = ScenarioFile::parse(text).unwrap();
        render_scenario(&file, spec, &BatchOptions::default()).unwrap()
    }

    #[test]
    fn auto_renders_a_chart_for_sweeps_and_a_map_for_points() {
        let chart = render(MINI_SWEEP, &ReportSpec::default());
        assert_eq!(chart.figures[0].name, "mini-chart");
        assert!(chart.figures[0].svg.contains("<polyline"));
        assert!(chart.figures[0].svg.contains("coverage vs m"));

        let map = render(MINI_POINT, &ReportSpec::default());
        assert_eq!(map.figures[0].name, "mini-map");
        // Dense probes: every one of the 225 cells is a rect.
        assert_eq!(map.figures[0].svg.matches("<rect").count(), 225);
        // Decor styling: source gold, lattice bad nodes black, the
        // declared probe called out.
        assert!(map.figures[0].svg.contains("#ffd700"));
        assert!(map.figures[0].svg.contains("#1a1a1a"));
        assert!(map.figures[0].svg.contains("probe (3, 3):"));
    }

    /// `log_x` reaches the chart renderer: the axis label gains the
    /// "(log)" suffix and the figure differs from the linear render.
    #[test]
    fn log_x_charts_render_a_log_axis() {
        let spec = ReportSpec {
            log_x: true,
            ..ReportSpec::default()
        };
        let logged = render(MINI_SWEEP, &spec);
        assert!(logged.figures[0].svg.contains("m (log)"), "log axis label");
        let linear = render(MINI_SWEEP, &ReportSpec::default());
        assert_ne!(logged.figures[0].svg, linear.figures[0].svg);
    }

    #[test]
    fn rendering_is_deterministic() {
        let spec = ReportSpec::default();
        assert_eq!(
            render(MINI_POINT, &spec).figures,
            render(MINI_POINT, &spec).figures
        );
        assert_eq!(
            render(MINI_SWEEP, &spec).figures,
            render(MINI_SWEEP, &spec).figures
        );
    }

    #[test]
    fn chart_field_and_axis_selection_validates() {
        let file = ScenarioFile::parse(MINI_SWEEP).unwrap();
        let ok = render_scenario(
            &file,
            &ReportSpec {
                field: Some("waves".to_string()),
                ..ReportSpec::default()
            },
            &BatchOptions::default(),
        )
        .unwrap();
        assert!(ok.figures[0].svg.contains("waves vs m"));

        for (field, x) in [(Some("no_such_field"), None), (None, Some("zz"))] {
            let spec = ReportSpec {
                field: field.map(str::to_string),
                x_axis: x.map(str::to_string),
                ..ReportSpec::default()
            };
            let err = render_scenario(&file, &spec, &BatchOptions::default()).unwrap_err();
            assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
        }
    }

    #[test]
    fn map_field_point_and_probe_errors_are_named() {
        let file = ScenarioFile::parse(MINI_POINT).unwrap();
        let bad_field = ReportSpec {
            figure: FigureKind::Map,
            field: Some("warp".to_string()),
            ..ReportSpec::default()
        };
        let err = render_scenario(&file, &bad_field, &BatchOptions::default()).unwrap_err();
        assert!(err.to_string().contains("warp"), "{err}");

        let bad_point = ReportSpec {
            figure: FigureKind::Map,
            point: 9,
            ..ReportSpec::default()
        };
        let err = render_scenario(&file, &bad_point, &BatchOptions::default()).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");

        // A chart over a single point has no sweep axes.
        let chart = ReportSpec {
            figure: FigureKind::Chart,
            ..ReportSpec::default()
        };
        let err = render_scenario(&file, &chart, &BatchOptions::default()).unwrap_err();
        assert!(err.to_string().contains("sweep axes"), "{err}");
    }

    #[test]
    fn two_axis_sweeps_become_one_series_per_secondary_value() {
        let file = ScenarioFile::parse(concat!(
            "name = \"two-axis\"\n",
            "[topology]\nside = 15\nr = 1\n",
            "[faults]\nt = 1\nmf = 4\n",
            "[protocol]\nkind = \"starved\"\nm = 4\n",
            "[sweep]\nm = [2, 8]\nseed = \"0..3\"\n",
        ))
        .unwrap();
        // x = seed, one series per m value.
        let out = render_scenario(
            &file,
            &ReportSpec {
                x_axis: Some("seed".to_string()),
                ..ReportSpec::default()
            },
            &BatchOptions::default(),
        )
        .unwrap();
        let svg = &out.figures[0].svg;
        assert_eq!(svg.matches("<polyline").count(), 2);
        assert!(svg.contains("m=2") && svg.contains("m=8"), "{svg}");
    }

    #[test]
    fn jsonl_round_trip_matches_the_scenario_path_for_charts() {
        let file = ScenarioFile::parse(MINI_SWEEP).unwrap();
        let spec = ReportSpec::default();
        let direct = render_scenario(&file, &spec, &BatchOptions::default()).unwrap();
        let rows = crate::batch::run_file(&file).unwrap().jsonl();
        let replayed = render_jsonl(&rows, &spec, None).unwrap();
        assert_eq!(
            direct.figures[0], replayed,
            "captured rows render the same bytes"
        );
    }

    #[test]
    fn jsonl_map_without_decor_infers_dimensions() {
        let rows = concat!(
            "{\"scenario\":\"inferred\",\"engine\":\"counting\",\"point\":{},",
            "\"outcome\":{\"kind\":\"counting\",\"accepted_true\":3,\"waves\":2,",
            "\"coverage\":1.0},\"probes\":[",
            "{\"x\":0,\"y\":0,\"node\":0,\"tally_true\":4,\"tally_wrong\":0,",
            "\"intake\":4,\"decided_neighbors\":1,\"accepted\":\"true\"},",
            "{\"x\":2,\"y\":1,\"node\":7,\"tally_true\":1,\"tally_wrong\":3,",
            "\"intake\":4,\"decided_neighbors\":0,\"accepted\":null}]}\n",
        );
        let figure = render_jsonl(rows, &ReportSpec::default(), None).unwrap();
        assert_eq!(figure.name, "inferred-map");
        // Inferred 3x2 torus: 6 cells.
        assert_eq!(figure.svg.matches("<rect").count(), 6);
        assert!(figure.svg.contains("accepted_true 3"));
    }

    #[test]
    fn malformed_rows_are_rejected_with_line_numbers() {
        for bad in [
            "",
            "not json\n",
            "{\"scenario\":\"x\"}\n", // no outcome
            concat!(
                "{\"scenario\":\"x\",\"outcome\":{\"kind\":\"counting\"},",
                "\"probes\":[{\"x\":0}]}\n"
            ),
        ] {
            let err = render_jsonl(bad, &ReportSpec::default(), None).unwrap_err();
            assert!(
                matches!(err, ScenarioError::Invalid { .. }),
                "{bad:?}: {err}"
            );
        }
    }

    #[test]
    fn report_spec_wire_fields_parse_and_validate() {
        let doc = Json::parse(
            "{\"figure\":\"chart\",\"field\":\"waves\",\"x\":\"m\",\"log_x\":true,\
             \"point\":2,\"cell\":6}",
        )
        .unwrap();
        let spec = ReportSpec::from_json_fields(&doc).unwrap();
        assert_eq!(spec.figure, FigureKind::Chart);
        assert_eq!(spec.field.as_deref(), Some("waves"));
        assert_eq!(spec.x_axis.as_deref(), Some("m"));
        assert!(spec.log_x);
        assert_eq!((spec.point, spec.cell_px), (2, 6));
        assert_eq!(
            ReportSpec::from_json_fields(&Json::parse("{}").unwrap()).unwrap(),
            ReportSpec::default()
        );
        for bad in [
            "{\"figure\":\"pie\"}",
            "{\"figure\":7}",
            "{\"point\":\"x\"}",
            "{\"cell\":0}",
            "{\"cell\":1000}",
            "{\"log_x\":\"yes\"}",
        ] {
            let doc = Json::parse(bad).unwrap();
            assert!(ReportSpec::from_json_fields(&doc).is_err(), "{bad}");
        }
    }

    #[test]
    fn figure_names_are_sanitized() {
        assert_eq!(figure_name("f2", "map"), "f2-map");
        assert_eq!(figure_name("My Sweep!", "chart"), "my-sweep--chart");
        assert_eq!(figure_name("", "map"), "scenario-map");
    }

    #[test]
    fn figure_hash_is_stable_and_content_sensitive() {
        assert_eq!(figure_hash(""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(figure_hash("<svg a"), figure_hash("<svg b"));
    }

    #[test]
    fn heat_legend_carries_quartile_ticks() {
        assert_eq!(
            heat_legend("intake", 2124),
            "heat: intake 0 (light) | 531 | 1062 | 1593 | 2124 (dark)"
        );
        // Rounding quartiles of an awkward max stay ordered.
        assert_eq!(
            heat_legend("intake", 10),
            "heat: intake 0 (light) | 2 | 5 | 7 | 10 (dark)"
        );
        assert_eq!(heat_legend("x", 0), "heat: x 0 (light) to 0 (dark)");
    }
}
