//! **bftbcast** — message-efficient Byzantine fault-tolerant broadcast
//! for multi-hop wireless sensor networks.
//!
//! A from-scratch Rust reproduction of Bertier, Kermarrec and Tan,
//! *"Message-Efficient Byzantine Fault-Tolerant Broadcast in a Multi-Hop
//! Wireless Sensor Network"* (ICDCS 2010): the toroidal grid radio
//! model, the locally-bounded collision-capable adversary, the
//! message-budget bounds (`m0`, `2·m0`), protocols **B**, **Bheter**
//! and **Breactive**, the two-level AUED integrity code, and the
//! worst-case simulation machinery that regenerates every construction
//! in the paper.
//!
//! # Quickstart
//!
//! ```
//! use bftbcast::prelude::*;
//!
//! // A 15x15 torus with radio range 1; up to 1 Byzantine node per
//! // neighborhood, each with a budget of 50 messages.
//! let scenario = Scenario::builder(15, 15, 1)
//!     .faults(1, 50)
//!     .lattice_placement()
//!     .build()
//!     .unwrap();
//!
//! // Protocol B with the paper's sufficient budget m = 2*m0 survives
//! // the strongest (per-receiver oracle) adversary:
//! let outcome = scenario.run_protocol_b(Adversary::PerReceiverOracle);
//! assert!(outcome.is_reliable());
//!
//! // The same network with budgets below m0 stalls:
//! let m = scenario.params().m0() - 1;
//! let starved = scenario.run_starved(m, Adversary::PerReceiverOracle);
//! assert!(!starved.is_complete());
//! ```
//!
//! # Crate map
//!
//! | module | contents |
//! |--------|----------|
//! | [`net`] | torus grid, L∞ neighborhoods, regions, TDMA schedules, budgets |
//! | [`coding`] | two-level AUED code and the sub-bit channel (Fig. 9) |
//! | [`geometry`] | exact committed-line/frontier verification (Lemmas 5–11) |
//! | [`adversary`] | bad-node placements and corruption strategies |
//! | [`protocols`] | bounds (`m0`, Corollary 1, Theorem 4) and protocol specs |
//! | [`sim`] | counting engine, slot engine, crash/hybrid engine, agreement engine, `SimEngine` trait, sweep runner |
//! | [`rbc`] | message-level runtime: flood baseline, Bracha RBC, erasure-coded CTRBC |
//! | [`viz`] | SVG torus maps and sweep charts |
//! | [`scenario`] | this crate's high-level builder API |
//! | [`spec`] | the canonical typed [`EngineSpec`]: builder, `.scn` ⇄ JSON codecs, identity = cache key |
//! | [`scn`] / [`scenario_file`] / [`batch`] | declarative `*.scn` scenario files and the batch runner |
//! | [`cache`] | content-addressed cache keys and the result codec over `bftbcast-store` |
//! | [`report`] | the report layer: sweep results → deterministic SVG maps and charts |
//!
//! # Declarative scenarios
//!
//! The same run can be described in a `*.scn` file (see
//! `docs/ARCHITECTURE.md` for the grammar) and executed — optionally
//! over a sweep grid — without writing Rust:
//!
//! ```
//! use bftbcast::batch::run_file;
//! use bftbcast::scenario_file::ScenarioFile;
//!
//! let file = ScenarioFile::parse(concat!(
//!     "[topology]\nside = 15\nr = 1\n",
//!     "[faults]\nt = 1\nmf = 50\n",
//!     "[placement]\nkind = \"lattice\"\n",
//! ))
//! .unwrap();
//! let report = run_file(&file).unwrap();
//! assert!(report.results[0].outcome.success());
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use bftbcast_adversary as adversary;
pub use bftbcast_coding as coding;
pub use bftbcast_geometry as geometry;
pub use bftbcast_net as net;
pub use bftbcast_protocols as protocols;
pub use bftbcast_rbc as rbc;
pub use bftbcast_sim as sim;
pub use bftbcast_viz as viz;

pub mod batch;
pub mod cache;
pub mod json;
pub mod prelude;
pub mod report;
pub mod scenario;
pub mod scenario_file;
pub mod scn;
pub mod spec;

pub use batch::{run_file, run_file_with, BatchOptions, BatchReport, PointResult};
pub use report::{Figure, FigureKind, ReportSpec};
pub use scenario::{Adversary, Scenario, ScenarioBuilder, ScenarioError};
pub use scenario_file::{EngineKind, PointSpec, ScenarioFile};
pub use spec::{EngineSpec, SpecBuilder};

/// Compiles the README's code blocks as doctests, so the embedding
/// examples there can never drift from the real API.
#[doc = include_str!("../../../README.md")]
#[cfg(doctest)]
pub struct ReadmeDoctests;
