//! Minimal JSON writing helpers (no dependencies), shared by the batch
//! runner's JSON-lines stream and the bench harness's `BENCH_*.json`
//! reports.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document (quotes,
/// backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders a `["a","b",...]` array of strings.
pub fn string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| string(s)).collect();
    format!("[{}]", cells.join(","))
}

/// Renders a float as a JSON number (finite values only; non-finite
/// become `null`, which JSON has no float spelling for).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// An incremental `{...}` object writer preserving insertion order.
#[derive(Debug, Default, Clone)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Adds a pre-rendered JSON value under `key`.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = string(value);
        self.raw(key, rendered)
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a float field.
    pub fn f64(self, key: &str, value: f64) -> Self {
        let rendered = number(value);
        self.raw(key, rendered)
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the object on one line.
    pub fn render(&self) -> String {
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{v}", string(k)))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_renders_in_insertion_order() {
        let o = Object::new()
            .str("name", "f2")
            .u64("m", 59)
            .f64("coverage", 0.5)
            .bool("ok", true)
            .raw("probes", "[]");
        assert_eq!(
            o.render(),
            "{\"name\":\"f2\",\"m\":59,\"coverage\":0.5,\"ok\":true,\"probes\":[]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.25), "1.25");
    }

    #[test]
    fn string_array_quotes_and_joins() {
        assert_eq!(
            string_array(&["a".into(), "b\"c".into()]),
            "[\"a\",\"b\\\"c\"]"
        );
    }
}
