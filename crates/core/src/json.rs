//! Minimal JSON helpers (no dependencies): the writing side shared by
//! the batch runner's JSON-lines stream and the bench harness's
//! `BENCH_*.json` reports, and a small reading side ([`Json::parse`])
//! for the `bftbcast serve` line protocol.

use std::fmt::Write as _;

/// Escapes a string for embedding in a JSON document (quotes,
/// backslashes, control characters).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders a quoted JSON string.
pub fn string(s: &str) -> String {
    format!("\"{}\"", escape(s))
}

/// Renders a `["a","b",...]` array of strings.
pub fn string_array(items: &[String]) -> String {
    let cells: Vec<String> = items.iter().map(|s| string(s)).collect();
    format!("[{}]", cells.join(","))
}

/// Renders a float as a JSON number (finite values only; non-finite
/// become `null`, which JSON has no float spelling for).
pub fn number(x: f64) -> String {
    if x.is_finite() {
        format!("{x}")
    } else {
        "null".to_string()
    }
}

/// An incremental `{...}` object writer preserving insertion order.
#[derive(Debug, Default, Clone)]
pub struct Object {
    fields: Vec<(String, String)>,
}

impl Object {
    /// An empty object.
    pub fn new() -> Self {
        Object::default()
    }

    /// Adds a pre-rendered JSON value under `key`.
    pub fn raw(mut self, key: &str, value: impl Into<String>) -> Self {
        self.fields.push((key.to_string(), value.into()));
        self
    }

    /// Adds a string field.
    pub fn str(self, key: &str, value: &str) -> Self {
        let rendered = string(value);
        self.raw(key, rendered)
    }

    /// Adds an unsigned integer field.
    pub fn u64(self, key: &str, value: u64) -> Self {
        self.raw(key, value.to_string())
    }

    /// Adds a float field.
    pub fn f64(self, key: &str, value: f64) -> Self {
        let rendered = number(value);
        self.raw(key, rendered)
    }

    /// Adds a boolean field.
    pub fn bool(self, key: &str, value: bool) -> Self {
        self.raw(key, if value { "true" } else { "false" })
    }

    /// Renders the object on one line.
    pub fn render(&self) -> String {
        let fields: Vec<String> = self
            .fields
            .iter()
            .map(|(k, v)| format!("{}:{v}", string(k)))
            .collect();
        format!("{{{}}}", fields.join(","))
    }
}

/// A parsed JSON value. Numbers keep their source text so integers
/// round-trip exactly (no detour through `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number, as written.
    Num(String),
    /// A string (escapes resolved).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, fields in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses one JSON document (trailing whitespace allowed, nothing
    /// else after the value).
    ///
    /// # Errors
    ///
    /// A human-readable description of the first syntax error.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
            depth: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing input at byte {}", p.pos));
        }
        Ok(value)
    }

    /// Object field lookup (first match; `None` on non-objects).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if this is a non-negative integer number.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(raw) => raw.parse().ok(),
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `f64`, if this is a (finite) number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(raw) => raw.parse().ok().filter(|x: &f64| x.is_finite()),
            _ => None,
        }
    }

    /// The array items, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Maximum container nesting. The parser recurses per level and reads
/// untrusted network input under `bftbcast serve`, so depth must be
/// bounded well below stack exhaustion.
const MAX_DEPTH: u32 = 128;

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
    depth: u32,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while matches!(self.bytes.get(self.pos), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected {:?} at byte {}", char::from(b), self.pos))
        }
    }

    fn lit(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        if self.depth >= MAX_DEPTH {
            return Err(format!("nesting deeper than {MAX_DEPTH} levels"));
        }
        self.depth += 1;
        let value = match self.peek() {
            Some(b'n') => self.lit("null", Json::Null),
            Some(b't') => self.lit("true", Json::Bool(true)),
            Some(b'f') => self.lit("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        };
        self.depth -= 1;
        value
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while matches!(
            self.peek(),
            Some(b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
        ) {
            self.pos += 1;
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii");
        raw.parse::<f64>()
            .map_err(|_| format!("bad number {raw:?} at byte {start}"))?;
        Ok(Json::Num(raw.to_string()))
    }

    fn hex4(&mut self) -> Result<u16, String> {
        let end = self.pos + 4;
        let slice = self
            .bytes
            .get(self.pos..end)
            .ok_or_else(|| format!("truncated \\u escape at byte {}", self.pos))?;
        let text = std::str::from_utf8(slice).map_err(|_| "non-ascii \\u escape".to_string())?;
        let v = u16::from_str_radix(text, 16)
            .map_err(|_| format!("bad \\u escape {text:?} at byte {}", self.pos))?;
        self.pos = end;
        Ok(v)
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".to_string()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: a second \uXXXX must follow.
                                self.eat(b'\\')?;
                                self.eat(b'u')?;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err("unpaired surrogate".to_string());
                                }
                                let c = 0x10000
                                    + (u32::from(hi - 0xd800) << 10)
                                    + u32::from(lo - 0xdc00);
                                char::from_u32(c).ok_or("bad surrogate pair")?
                            } else {
                                char::from_u32(u32::from(hi)).ok_or("unpaired surrogate")?
                            };
                            out.push(c);
                            continue; // hex4 advanced pos already
                        }
                        other => return Err(format!("bad escape {other:?}")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Advance one UTF-8 character (input is a &str, so
                    // boundaries are trustworthy).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..]).expect("utf8 input");
                    let c = rest.chars().next().expect("peeked");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        assert_eq!(escape("a\"b\\c\nd\te\r"), "a\\\"b\\\\c\\nd\\te\\r");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn object_renders_in_insertion_order() {
        let o = Object::new()
            .str("name", "f2")
            .u64("m", 59)
            .f64("coverage", 0.5)
            .bool("ok", true)
            .raw("probes", "[]");
        assert_eq!(
            o.render(),
            "{\"name\":\"f2\",\"m\":59,\"coverage\":0.5,\"ok\":true,\"probes\":[]}"
        );
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(1.25), "1.25");
    }

    #[test]
    fn string_array_quotes_and_joins() {
        assert_eq!(
            string_array(&["a".into(), "b\"c".into()]),
            "[\"a\",\"b\\\"c\"]"
        );
    }

    #[test]
    fn parses_scalars_arrays_and_objects() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse(" true ").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse("-1.5e3").unwrap(), Json::Num("-1.5e3".into()));
        assert_eq!(
            Json::parse("[1, \"a\", []]").unwrap(),
            Json::Arr(vec![
                Json::Num("1".into()),
                Json::Str("a".into()),
                Json::Arr(vec![])
            ])
        );
        let obj = Json::parse("{\"cmd\": \"submit\", \"points\": 3}").unwrap();
        assert_eq!(obj.get("cmd").and_then(Json::as_str), Some("submit"));
        assert_eq!(obj.get("points").and_then(Json::as_u64), Some(3));
        assert_eq!(obj.get("absent"), None);
    }

    #[test]
    fn large_integers_round_trip_exactly() {
        let big = u64::MAX;
        let doc = format!("{{\"key\":{big}}}");
        let parsed = Json::parse(&doc).unwrap();
        assert_eq!(parsed.get("key").and_then(Json::as_u64), Some(big));
    }

    #[test]
    fn string_escapes_round_trip_through_writer_and_reader() {
        for original in ["plain", "quo\"te", "tab\there", "uni £ 😀", "\u{1} ctl"] {
            let doc = string(original);
            match Json::parse(&doc).unwrap() {
                Json::Str(s) => assert_eq!(s, original),
                other => panic!("{other:?}"),
            }
        }
        // Explicit \u escapes, including a surrogate pair.
        assert_eq!(
            Json::parse("\"\\u0041\\ud83d\\ude00\"").unwrap(),
            Json::Str("A😀".into())
        );
    }

    #[test]
    fn hostile_nesting_is_an_error_not_a_stack_overflow() {
        // The parser reads untrusted network input under `serve`: a
        // 100k-deep array must be rejected, not abort the process.
        let deep = "[".repeat(100_000);
        let err = Json::parse(&deep).unwrap_err();
        assert!(err.contains("nesting"), "{err}");
        // Reasonable nesting still parses.
        let ok = format!("{}1{}", "[".repeat(100), "]".repeat(100));
        assert!(Json::parse(&ok).is_ok());
    }

    #[test]
    fn parse_errors_are_reported() {
        for bad in [
            "",
            "{",
            "[1,",
            "{\"a\"}",
            "tru",
            "1x",
            "\"\\q\"",
            "\"\\ud800\"",
            "[] []",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} parsed");
        }
    }

    #[test]
    fn nested_protocol_shapes_parse() {
        let line = "{\"ok\":true,\"job\":\"job-0\",\"rows\":[{\"x\":0}],\"err\":null}";
        let v = Json::parse(line).unwrap();
        assert_eq!(v.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(v.get("job").and_then(Json::as_str), Some("job-0"));
        assert_eq!(v.get("err"), Some(&Json::Null));
        match v.get("rows") {
            Some(Json::Arr(rows)) => {
                assert_eq!(rows[0].get("x").and_then(Json::as_u64), Some(0));
            }
            other => panic!("{other:?}"),
        }
    }
}
