//! The canonical construction surface: one typed [`EngineSpec`] that
//! every entry point — `.scn` files, CLI flags, the wire protocol, and
//! embedding Rust code — converges on.
//!
//! An [`EngineSpec`] is a *validated* engine configuration: engine
//! kind, topology, fault parameters, placement, protocol, adversary,
//! seeds, and probe cells. It is produced by the fluent
//! [`SpecBuilder`], by [`EngineSpec::from_scn`] /
//! [`EngineSpec::from_json`], or by expanding a [`ScenarioFile`] with
//! [`ScenarioFile::specs`](crate::scenario_file::ScenarioFile::specs) —
//! and consumed by [`EngineSpec::build_engine`], which every layer
//! (the batch runner, the server job queue, embedders) uses to
//! construct the actual [`SimEngine`].
//!
//! # Identity is the cache key
//!
//! Both codecs are **lossless** and mirror the field definitions of
//! [`crate::cache::point_key`]: two specs are the same configuration
//! exactly when [`EngineSpec::cache_key`] agrees, regardless of which
//! surface they came through. A scenario submitted as `.scn` text and
//! the same configuration submitted as spec JSON therefore hit the
//! same store entries (see `crates/server`). The spec `name` — like a
//! sweep label — is presentation, not configuration, and never reaches
//! the key.
//!
//! # Example
//!
//! ```
//! use bftbcast::sim::engine::SimEngine;
//! use bftbcast::spec::EngineSpec;
//!
//! let mut engine = EngineSpec::counting(15, 15, 1)
//!     .faults(1, 50)
//!     .lattice()
//!     .build()
//!     .unwrap();
//! assert!(engine.run_to_completion().success());
//!
//! // The same configuration, as a validated value with an identity:
//! let spec = EngineSpec::counting(15, 15, 1)
//!     .faults(1, 50)
//!     .lattice()
//!     .finish()
//!     .unwrap();
//! assert_eq!(EngineSpec::from_json(&spec.to_json()).unwrap(), spec);
//! assert_eq!(EngineSpec::from_scn(&spec.to_scn()).unwrap(), spec);
//! assert_eq!(
//!     EngineSpec::from_json(&spec.to_json()).unwrap().cache_key(),
//!     spec.cache_key()
//! );
//! ```

use std::fmt::Write as _;

use bftbcast_net::{Cross, NodeId};
use bftbcast_protocols::reactive::ReactiveConfig;
use bftbcast_protocols::CountingProtocol;
use bftbcast_rbc::{RbcConfig, RbcEngine};
use bftbcast_sim::crash::{crash_only_protocol, crash_stripe, CrashBehavior, HybridSim};
use bftbcast_sim::engine::{
    AgreementEngine, AgreementMode, CountingDrive, CountingEngine, CrashEngine, SimEngine,
    SlotEngine,
};
use bftbcast_sim::slot::{ReactiveAdversary, SlotConfig};

use crate::cache::{self, CACHE_SCHEMA_VERSION};
use crate::json::{Json, Object};
use crate::scenario::ScenarioError;
use crate::scenario_file::{
    self, AdversarySpec, AgreementSpec, CrashNodesSpec, CrashSpec, EngineKind, PlacementSpec,
    PointSpec, ProtocolSpec, RbcSpec, ReactiveSpec, ScenarioFile, SourceSpec,
};
use bftbcast_rbc::{ByzantineBehavior, RbcProtocol, ScheduleKind};

// ---------------------------------------------------------------------
// Canonical names for the sim-crate enums (both codec directions).
// ---------------------------------------------------------------------

/// The grammar's name for a slot-engine adversary (also the cache-key
/// spelling in [`crate::cache::point_key`]).
pub fn reactive_adversary_name(adv: ReactiveAdversary) -> &'static str {
    match adv {
        ReactiveAdversary::Passive => "passive",
        ReactiveAdversary::Jammer => "jammer",
        ReactiveAdversary::Canceller => "canceller",
        ReactiveAdversary::NackForger => "nack_forger",
        ReactiveAdversary::WitnessForger => "witness_forger",
        ReactiveAdversary::Mixed => "mixed",
    }
}

/// The inverse of [`reactive_adversary_name`].
pub fn reactive_adversary_from_name(name: &str) -> Option<ReactiveAdversary> {
    Some(match name {
        "passive" => ReactiveAdversary::Passive,
        "jammer" => ReactiveAdversary::Jammer,
        "canceller" => ReactiveAdversary::Canceller,
        "nack_forger" => ReactiveAdversary::NackForger,
        "witness_forger" => ReactiveAdversary::WitnessForger,
        "mixed" => ReactiveAdversary::Mixed,
        _ => return None,
    })
}

/// The grammar's name for an agreement mode.
pub fn agreement_mode_name(mode: AgreementMode) -> &'static str {
    match mode {
        AgreementMode::Cheap => "cheap",
        AgreementMode::Proven => "proven",
    }
}

/// The inverse of [`agreement_mode_name`].
pub fn agreement_mode_from_name(name: &str) -> Option<AgreementMode> {
    Some(match name {
        "cheap" => AgreementMode::Cheap,
        "proven" => AgreementMode::Proven,
        _ => return None,
    })
}

fn invalid(what: &str, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid {
        what: what.to_string(),
        message: message.into(),
    }
}

// ---------------------------------------------------------------------
// EngineSpec
// ---------------------------------------------------------------------

/// One validated engine configuration — see the [module docs](self).
///
/// Construction always validates (builder [`SpecBuilder::finish`],
/// codecs, [`EngineSpec::from_parts`]), so holding an `EngineSpec`
/// means [`EngineSpec::build_engine`] can only fail on placement-level
/// errors that need the actual grid (local-bound violations).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineSpec {
    name: String,
    engine: EngineKind,
    point: PointSpec,
    probes: Vec<(u32, u32)>,
}

impl EngineSpec {
    /// Starts a counting-engine spec on a `width`×`height` torus with
    /// radio range `r`.
    pub fn counting(width: u32, height: u32, r: u32) -> SpecBuilder {
        SpecBuilder::new(EngineKind::Counting, width, height, r)
    }

    /// Starts a crash/hybrid-engine spec.
    pub fn crash(width: u32, height: u32, r: u32) -> SpecBuilder {
        SpecBuilder::new(EngineKind::Crash, width, height, r)
    }

    /// Starts a slot-engine (`Breactive`) spec.
    pub fn slot(width: u32, height: u32, r: u32) -> SpecBuilder {
        SpecBuilder::new(EngineKind::Slot, width, height, r)
    }

    /// Starts an agreement-engine spec.
    pub fn agreement(width: u32, height: u32, r: u32) -> SpecBuilder {
        SpecBuilder::new(EngineKind::Agreement, width, height, r)
    }

    /// Starts a message-level rbc-engine spec.
    pub fn rbc(width: u32, height: u32, r: u32) -> SpecBuilder {
        SpecBuilder::new(EngineKind::Rbc, width, height, r)
    }

    /// Starts a spec for any engine kind.
    pub fn builder(engine: EngineKind, width: u32, height: u32, r: u32) -> SpecBuilder {
        SpecBuilder::new(engine, width, height, r)
    }

    /// Assembles and validates a spec from already-resolved parts (the
    /// path [`ScenarioFile::specs`] and the batch runner use). The
    /// point's sweep label is cleared — labels are presentation, and a
    /// spec's identity is its cache key.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] for any configuration the `.scn` grammar would
    /// reject: cross-field violations (a crash engine without a crash
    /// load, a majority protocol off the counting engine, …),
    /// inapplicable sections carrying non-default values, cells off the
    /// torus, out-of-range fractions.
    pub fn from_parts(
        name: String,
        engine: EngineKind,
        mut point: PointSpec,
        probes: Vec<(u32, u32)>,
    ) -> Result<EngineSpec, ScenarioError> {
        point.label.clear();
        validate_spec(&name, engine, &point, &probes)?;
        Ok(EngineSpec {
            name,
            engine,
            point,
            probes,
        })
    }

    /// The spec's display name (presentation only — never part of
    /// [`EngineSpec::cache_key`]).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Which engine this spec builds.
    pub fn engine(&self) -> EngineKind {
        self.engine
    }

    /// The fully-resolved configuration point.
    pub fn point(&self) -> &PointSpec {
        &self.point
    }

    /// Probe cells reported after a run.
    pub fn probes(&self) -> &[(u32, u32)] {
        &self.probes
    }

    /// The spec's content-addressed identity:
    /// [`crate::cache::point_key`] over every field the engines read.
    /// Equal keys ⇔ same configuration, whichever surface (builder,
    /// `.scn`, JSON, wire) produced it.
    pub fn cache_key(&self) -> u64 {
        cache::point_key(self.engine, &self.point, &self.probes)
    }

    /// Builds the configured engine.
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] from scenario construction — in practice only
    /// placement-level failures that need the actual grid (local-bound
    /// violations, invalid torus/range combinations).
    pub fn build_engine(&self) -> Result<Box<dyn SimEngine>, ScenarioError> {
        build_engine_impl(self.engine, &self.point)
    }
}

/// Validation shared by every `EngineSpec` entry path: the same
/// cross-field rules the `.scn` grammar enforces at parse time, so a
/// spec assembled by hand or decoded from JSON can never describe a
/// configuration a scenario file could not.
fn validate_spec(
    name: &str,
    engine: EngineKind,
    point: &PointSpec,
    probes: &[(u32, u32)],
) -> Result<(), ScenarioError> {
    if name
        .chars()
        .any(|c| (c as u32) < 0x20 && c != '\n' && c != '\t')
    {
        return Err(invalid("name", "control characters are not representable"));
    }
    // Inapplicable configuration must be at its defaults — mirrors the
    // grammar's section/engine applicability, and keeps the codecs
    // lossless (there is no `.scn` spelling for, say, a slot spec
    // carrying a counting protocol).
    if !matches!(engine, EngineKind::Counting | EngineKind::Crash)
        && point.protocol != ProtocolSpec::B
    {
        return Err(invalid(
            "protocol",
            format!("does not apply to engine = \"{}\"", engine.name()),
        ));
    }
    if engine != EngineKind::Counting && point.adversary != AdversarySpec::Oracle {
        return Err(invalid(
            "adversary",
            format!("does not apply to engine = \"{}\"", engine.name()),
        ));
    }
    match engine {
        EngineKind::Crash => {
            if point.crash.is_none() {
                return Err(invalid(
                    "crash",
                    "the crash engine needs a crash fault load",
                ));
            }
        }
        _ => {
            if point.crash.is_some() {
                return Err(invalid(
                    "crash",
                    format!("does not apply to engine = \"{}\"", engine.name()),
                ));
            }
        }
    }
    if engine != EngineKind::Slot && point.reactive != ReactiveSpec::default() {
        return Err(invalid(
            "reactive",
            format!("does not apply to engine = \"{}\"", engine.name()),
        ));
    }
    if engine != EngineKind::Agreement && point.agreement != AgreementSpec::default() {
        return Err(invalid(
            "agreement",
            format!("does not apply to engine = \"{}\"", engine.name()),
        ));
    }
    if engine != EngineKind::Rbc && point.rbc != RbcSpec::default() {
        return Err(invalid(
            "rbc",
            format!("does not apply to engine = \"{}\"", engine.name()),
        ));
    }
    if point.protocol == ProtocolSpec::CrashOnly && engine != EngineKind::Crash {
        return Err(invalid(
            "protocol.kind",
            "crash_only applies to the crash engine only",
        ));
    }
    if matches!(point.protocol, ProtocolSpec::Majority { .. }) {
        if engine != EngineKind::Counting {
            return Err(invalid(
                "protocol.kind",
                "majority applies to the counting engine only",
            ));
        }
        if point.adversary != AdversarySpec::Oracle {
            return Err(invalid(
                "adversary.kind",
                "the majority protocol is driven by the per-receiver oracle only",
            ));
        }
    }
    for &(x, y) in probes {
        scenario_file::check_probe_cell(x, y, point.width, point.height)?;
    }
    scenario_file::validate_point(point, engine)
}

/// Builds the right engine for one fully-resolved point (shared by
/// [`EngineSpec::build_engine`] and, through it, the batch runner).
fn build_engine_impl(
    engine: EngineKind,
    point: &PointSpec,
) -> Result<Box<dyn SimEngine>, ScenarioError> {
    let scenario = point.build_scenario()?;
    let grid = scenario.grid();
    let params = scenario.params();
    let protocol = |spec: ProtocolSpec| -> CountingProtocol {
        match spec {
            ProtocolSpec::B => CountingProtocol::protocol_b(grid, params),
            ProtocolSpec::Koo => CountingProtocol::koo_baseline(grid, params),
            ProtocolSpec::Heter => {
                let cross = Cross::paper_scale(0, 0, params.r);
                CountingProtocol::heterogeneous(grid, params, &cross)
            }
            ProtocolSpec::Starved { m } => CountingProtocol::starved(grid, params, m),
            // Mirrors Scenario::run_majority: send quota = quorum.
            ProtocolSpec::Majority { quorum } => CountingProtocol::starved(grid, params, quorum),
            ProtocolSpec::CrashOnly => crash_only_protocol(grid),
        }
    };
    Ok(match engine {
        EngineKind::Counting => {
            let drive = match (point.adversary, point.protocol) {
                (AdversarySpec::Oracle, ProtocolSpec::Majority { quorum }) => {
                    CountingDrive::Majority { quorum }
                }
                (AdversarySpec::Oracle, _) => CountingDrive::Oracle,
                (AdversarySpec::Greedy, _) => CountingDrive::Greedy,
                (AdversarySpec::Chaos, _) => CountingDrive::Chaos(point.seed),
                (AdversarySpec::Passive, _) => CountingDrive::Passive,
            };
            let sim = scenario.counting_sim(protocol(point.protocol));
            Box::new(CountingEngine::new(sim, params.mf, drive))
        }
        EngineKind::Crash => {
            let spec = point.crash.as_ref().expect("validated at construction");
            let mut dead: Vec<NodeId> = match &spec.nodes {
                CrashNodesSpec::Stripe { y0, height } => crash_stripe(grid, *y0, *height),
                CrashNodesSpec::Explicit(cells) => {
                    cells.iter().map(|&(x, y)| grid.id_at(x, y)).collect()
                }
            };
            // Crash nodes must not overlap the source or the Byzantine
            // set; the declarative layer filters rather than panics.
            dead.retain(|u| *u != scenario.source() && !scenario.bad_nodes().contains(u));
            let sim = HybridSim::new(grid.clone(), protocol(point.protocol), scenario.source())
                .with_byzantine_nodes(scenario.bad_nodes())
                .with_crash_nodes(&dead, spec.behavior);
            Box::new(CrashEngine::new(sim, params.mf))
        }
        EngineKind::Slot => {
            let config = SlotConfig {
                reactive: ReactiveConfig::paper(
                    grid.node_count(),
                    grid.range(),
                    params.t,
                    point.reactive.mmax,
                    point.reactive.k,
                ),
                t: params.t,
                mf: params.mf,
                good_budget: point.reactive.budget,
                adversary: point.reactive.adversary,
                max_rounds: point.reactive.max_rounds,
                seed: point.seed,
            };
            Box::new(SlotEngine::new(
                grid.clone(),
                scenario.source(),
                scenario.bad_nodes(),
                config,
            ))
        }
        EngineKind::Agreement => {
            use bftbcast_net::Value;
            use bftbcast_sim::agreement::{SourceBehavior, SplitAttack};
            // Construction-time validation covers this; re-checked here
            // so a hand-built PointSpec errors instead of asserting on
            // a sweep() worker thread.
            if point.agreement.mode == AgreementMode::Proven {
                use bftbcast_protocols::agreement::proven_max_t;
                if u64::from(params.t) > proven_max_t(params.r) {
                    return Err(invalid(
                        "agreement.mode",
                        format!(
                            "proven mode requires t <= {} at r = {}",
                            proven_max_t(params.r),
                            params.r
                        ),
                    ));
                }
            }
            let sim = scenario.agreement_sim();
            let behavior = match point.agreement.source {
                SourceSpec::Correct => SourceBehavior::Correct,
                SourceSpec::Split => SourceBehavior::even_split(sim.config(), Value(2), Value(3)),
                SourceSpec::Silent => SourceBehavior::Silent,
            };
            let attack = SplitAttack {
                value_a: Value(2),
                value_b: Value(3),
                phase1_fraction: point.agreement.p1,
                echo_fraction: point.agreement.pe,
            };
            Box::new(AgreementEngine::new(
                sim,
                behavior,
                attack,
                point.agreement.mode,
            ))
        }
        EngineKind::Rbc => {
            let config = RbcConfig {
                protocol: point.rbc.protocol,
                t: params.t,
                payload_bits: point.rbc.payload,
                max_waves: point.rbc.max_waves,
                seed: point.seed,
                schedule: point.rbc.schedule,
                behavior: point.rbc.behavior,
            };
            Box::new(RbcEngine::new(
                grid.clone(),
                scenario.source(),
                scenario.bad_nodes(),
                config,
            ))
        }
    })
}

// ---------------------------------------------------------------------
// Builder
// ---------------------------------------------------------------------

/// Fluent construction of an [`EngineSpec`] — the embedding surface.
///
/// Every setter is infallible; [`SpecBuilder::finish`] (or
/// [`SpecBuilder::build`], which goes straight to the engine) runs the
/// full grammar validation in one place.
#[derive(Debug, Clone)]
pub struct SpecBuilder {
    name: String,
    engine: EngineKind,
    point: PointSpec,
    probes: Vec<(u32, u32)>,
}

impl SpecBuilder {
    fn new(engine: EngineKind, width: u32, height: u32, r: u32) -> Self {
        SpecBuilder {
            name: "spec".to_string(),
            engine,
            point: PointSpec {
                width,
                height,
                r,
                t: 1,
                mf: 1,
                source: (0, 0),
                seed: 0,
                placement: PlacementSpec::None,
                protocol: ProtocolSpec::B,
                adversary: AdversarySpec::Oracle,
                crash: None,
                reactive: ReactiveSpec::default(),
                agreement: AgreementSpec::default(),
                rbc: RbcSpec::default(),
                label: Vec::new(),
            },
            probes: Vec::new(),
        }
    }

    /// Display name (reported in every output row; not part of the
    /// cache key).
    pub fn name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Local bound `t` and per-bad-node budget `mf`.
    pub fn faults(mut self, t: u32, mf: u64) -> Self {
        self.point.t = t;
        self.point.mf = mf;
        self
    }

    /// Base-station cell (default `(0, 0)`).
    pub fn source(mut self, x: u32, y: u32) -> Self {
        self.point.source = (x, y);
        self
    }

    /// Run seed (chaos adversary, random/Bernoulli placement, slot
    /// RNG).
    pub fn seed(mut self, seed: u64) -> Self {
        self.point.seed = seed;
        self
    }

    /// Byzantine placement, explicitly.
    pub fn placement(mut self, placement: PlacementSpec) -> Self {
        self.point.placement = placement;
        self
    }

    /// Figure 2's lattice placement at the default offset.
    pub fn lattice(self) -> Self {
        self.placement(PlacementSpec::Lattice { offset: 1 })
    }

    /// Lattice placement at an explicit residue-class offset (41
    /// reproduces Figure 2's positions).
    pub fn lattice_offset(self, offset: u32) -> Self {
        self.placement(PlacementSpec::Lattice { offset })
    }

    /// Theorem 1's stripe placement: `(y0, t, victims_above)` per
    /// stripe.
    pub fn stripes(self, stripes: &[(u32, u32, bool)]) -> Self {
        self.placement(PlacementSpec::Stripes(stripes.to_vec()))
    }

    /// Random placement honoring the local bound (uses the run seed).
    pub fn random_bad(self, count: usize) -> Self {
        self.placement(PlacementSpec::Random { count })
    }

    /// Probabilistic iid corruption at rate `p` (uses the run seed).
    pub fn bernoulli(self, p: f64) -> Self {
        self.placement(PlacementSpec::Bernoulli { p })
    }

    /// An explicit list of Byzantine `(x, y)` cells.
    pub fn bad_cells(self, cells: &[(u32, u32)]) -> Self {
        self.placement(PlacementSpec::Explicit(cells.to_vec()))
    }

    /// Protocol under test, explicitly.
    pub fn protocol(mut self, protocol: ProtocolSpec) -> Self {
        self.point.protocol = protocol;
        self
    }

    /// Protocol B (Theorem 2, `m = 2·m0`) — the default.
    pub fn protocol_b(self) -> Self {
        self.protocol(ProtocolSpec::B)
    }

    /// The Koo PODC'06 baseline.
    pub fn koo(self) -> Self {
        self.protocol(ProtocolSpec::Koo)
    }

    /// `Bheter` with the paper-scale cross at the origin.
    pub fn heterogeneous(self) -> Self {
        self.protocol(ProtocolSpec::Heter)
    }

    /// Budget-starved protocol B variant at `m` copies per node.
    pub fn starved(self, m: u64) -> Self {
        self.protocol(ProtocolSpec::Starved { m })
    }

    /// Majority acceptance at this quorum (counting engine, oracle
    /// adversary only).
    pub fn majority(self, quorum: u64) -> Self {
        self.protocol(ProtocolSpec::Majority { quorum })
    }

    /// The crash-only protocol (crash engine only).
    pub fn crash_only(self) -> Self {
        self.protocol(ProtocolSpec::CrashOnly)
    }

    /// Counting-engine adversary, explicitly.
    pub fn adversary(mut self, adversary: AdversarySpec) -> Self {
        self.point.adversary = adversary;
        self
    }

    /// The frontier-starving greedy adversary.
    pub fn greedy(self) -> Self {
        self.adversary(AdversarySpec::Greedy)
    }

    /// The seeded random adversary (also sets the run seed).
    pub fn chaos(self, seed: u64) -> Self {
        self.seed(seed).adversary(AdversarySpec::Chaos)
    }

    /// No attacks.
    pub fn passive(self) -> Self {
        self.adversary(AdversarySpec::Passive)
    }

    /// Crash fault load, explicitly (crash engine).
    pub fn crash_load(mut self, crash: CrashSpec) -> Self {
        self.point.crash = Some(crash);
        self
    }

    /// Crash every node in rows `y0 .. y0 + height` (wrapping).
    pub fn crash_stripe(self, y0: u32, height: u32) -> Self {
        let behavior = self
            .point
            .crash
            .as_ref()
            .map_or(CrashBehavior::Immediate, |c| c.behavior);
        self.crash_load(CrashSpec {
            nodes: CrashNodesSpec::Stripe { y0, height },
            behavior,
        })
    }

    /// Crash an explicit list of `(x, y)` cells.
    pub fn crash_cells(self, cells: &[(u32, u32)]) -> Self {
        let behavior = self
            .point
            .crash
            .as_ref()
            .map_or(CrashBehavior::Immediate, |c| c.behavior);
        self.crash_load(CrashSpec {
            nodes: CrashNodesSpec::Explicit(cells.to_vec()),
            behavior,
        })
    }

    /// When crash nodes stop relaying (defaults to
    /// [`CrashBehavior::Immediate`]).
    pub fn crash_behavior(mut self, behavior: CrashBehavior) -> Self {
        let nodes = self
            .point
            .crash
            .take()
            .map_or(CrashNodesSpec::Stripe { y0: 0, height: 1 }, |c| c.nodes);
        self.point.crash = Some(CrashSpec { nodes, behavior });
        self
    }

    /// Slot-engine configuration (slot engine).
    pub fn reactive(mut self, reactive: ReactiveSpec) -> Self {
        self.point.reactive = reactive;
        self
    }

    /// Agreement-engine configuration (agreement engine).
    pub fn agreement_config(mut self, agreement: AgreementSpec) -> Self {
        self.point.agreement = agreement;
        self
    }

    /// Message-level RBC configuration (rbc engine).
    pub fn rbc_config(mut self, rbc: RbcSpec) -> Self {
        self.point.rbc = rbc;
        self
    }

    /// Replaces the probe-cell list.
    pub fn probes(mut self, cells: &[(u32, u32)]) -> Self {
        self.probes = cells.to_vec();
        self
    }

    /// Appends one probe cell.
    pub fn probe(mut self, x: u32, y: u32) -> Self {
        self.probes.push((x, y));
        self
    }

    /// Validates and returns the spec.
    ///
    /// # Errors
    ///
    /// Exactly [`EngineSpec::from_parts`]'s.
    pub fn finish(self) -> Result<EngineSpec, ScenarioError> {
        EngineSpec::from_parts(self.name, self.engine, self.point, self.probes)
    }

    /// Validates the spec and builds the configured engine in one step.
    ///
    /// # Errors
    ///
    /// [`SpecBuilder::finish`]'s validation errors, then
    /// [`EngineSpec::build_engine`]'s construction errors.
    pub fn build(self) -> Result<Box<dyn SimEngine>, ScenarioError> {
        self.finish()?.build_engine()
    }
}

// ---------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------

fn cells_json(cells: &[(u32, u32)]) -> String {
    let items: Vec<String> = cells.iter().map(|&(x, y)| format!("[{x},{y}]")).collect();
    format!("[{}]", items.join(","))
}

fn placement_json(placement: &PlacementSpec) -> String {
    match placement {
        PlacementSpec::None => Object::new().str("kind", "none").render(),
        PlacementSpec::Lattice { offset } => Object::new()
            .str("kind", "lattice")
            .u64("offset", u64::from(*offset))
            .render(),
        PlacementSpec::Stripes(stripes) => {
            let items: Vec<String> = stripes
                .iter()
                .map(|&(y0, t, above)| format!("[{y0},{t},{above}]"))
                .collect();
            Object::new()
                .str("kind", "stripes")
                .raw("stripes", format!("[{}]", items.join(",")))
                .render()
        }
        PlacementSpec::Random { count } => Object::new()
            .str("kind", "random")
            .u64("count", *count as u64)
            .render(),
        PlacementSpec::Bernoulli { p } => {
            Object::new().str("kind", "bernoulli").f64("p", *p).render()
        }
        PlacementSpec::Explicit(cells) => Object::new()
            .str("kind", "explicit")
            .raw("nodes", cells_json(cells))
            .render(),
    }
}

fn protocol_json(protocol: &ProtocolSpec) -> String {
    match protocol {
        ProtocolSpec::B => Object::new().str("kind", "b").render(),
        ProtocolSpec::Koo => Object::new().str("kind", "koo").render(),
        ProtocolSpec::Heter => Object::new().str("kind", "heter").render(),
        ProtocolSpec::Starved { m } => Object::new().str("kind", "starved").u64("m", *m).render(),
        ProtocolSpec::Majority { quorum } => Object::new()
            .str("kind", "majority")
            .u64("quorum", *quorum)
            .render(),
        ProtocolSpec::CrashOnly => Object::new().str("kind", "crash_only").render(),
    }
}

fn crash_json(crash: &CrashSpec) -> String {
    let nodes = match &crash.nodes {
        CrashNodesSpec::Stripe { y0, height } => Object::new()
            .str("kind", "stripe")
            .u64("y0", u64::from(*y0))
            .u64("height", u64::from(*height))
            .render(),
        CrashNodesSpec::Explicit(cells) => Object::new()
            .str("kind", "explicit")
            .raw("nodes", cells_json(cells))
            .render(),
    };
    let behavior = match crash.behavior {
        CrashBehavior::Immediate => Object::new().str("kind", "immediate").render(),
        CrashBehavior::AfterQuota => Object::new().str("kind", "after_quota").render(),
        CrashBehavior::AfterCopies(n) => Object::new()
            .str("kind", "after_copies")
            .u64("after", n)
            .render(),
    };
    Object::new()
        .raw("nodes", nodes)
        .raw("behavior", behavior)
        .render()
}

fn reactive_json(reactive: &ReactiveSpec) -> String {
    Object::new()
        .u64("k", reactive.k as u64)
        .u64("mmax", reactive.mmax)
        .str("adversary", reactive_adversary_name(reactive.adversary))
        .raw(
            "budget",
            reactive
                .budget
                .map_or("null".to_string(), |b| b.to_string()),
        )
        .u64("max_rounds", reactive.max_rounds)
        .render()
}

fn rbc_json(rbc: &RbcSpec) -> String {
    Object::new()
        .str("protocol", rbc.protocol.name())
        .u64("payload", u64::from(rbc.payload))
        .u64("max_waves", rbc.max_waves)
        .str("schedule", rbc.schedule.name())
        .str("behavior", rbc.behavior.name())
        .render()
}

fn agreement_json(agreement: &AgreementSpec) -> String {
    Object::new()
        .str("mode", agreement_mode_name(agreement.mode))
        .str("source", agreement.source.name())
        .f64("p1", agreement.p1)
        .f64("pe", agreement.pe)
        .render()
}

impl EngineSpec {
    /// Renders the spec as one line of canonical JSON — the wire form
    /// (`{"cmd":"submit","spec":{...}}`) and the `bftbcast spec`
    /// interchange form. Field names follow
    /// [`crate::cache::point_key`]'s record; sections that do not apply
    /// to the engine are omitted (they are at their defaults by
    /// construction).
    pub fn to_json(&self) -> String {
        let mut o = Object::new()
            .u64("version", u64::from(CACHE_SCHEMA_VERSION))
            .str("name", &self.name)
            .str("engine", self.engine.name())
            .u64("width", u64::from(self.point.width))
            .u64("height", u64::from(self.point.height))
            .u64("r", u64::from(self.point.r))
            .u64("t", u64::from(self.point.t))
            .u64("mf", self.point.mf)
            .u64("source_x", u64::from(self.point.source.0))
            .u64("source_y", u64::from(self.point.source.1))
            .u64("seed", self.point.seed)
            .raw("placement", placement_json(&self.point.placement));
        if matches!(self.engine, EngineKind::Counting | EngineKind::Crash) {
            o = o.raw("protocol", protocol_json(&self.point.protocol));
        }
        if self.engine == EngineKind::Counting {
            o = o.str("adversary", self.point.adversary.name());
        }
        if let Some(crash) = &self.point.crash {
            o = o.raw("crash", crash_json(crash));
        }
        if self.engine == EngineKind::Slot {
            o = o.raw("reactive", reactive_json(&self.point.reactive));
        }
        if self.engine == EngineKind::Agreement {
            o = o.raw("agreement", agreement_json(&self.point.agreement));
        }
        if self.engine == EngineKind::Rbc {
            o = o.raw("rbc", rbc_json(&self.point.rbc));
        }
        o.raw("probes", cells_json(&self.probes)).render()
    }

    /// Parses a spec from canonical JSON text.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] for malformed JSON, otherwise exactly
    /// [`EngineSpec::from_json_value`].
    pub fn from_json(text: &str) -> Result<EngineSpec, ScenarioError> {
        let doc = Json::parse(text).map_err(|message| ScenarioError::Parse { line: 1, message })?;
        EngineSpec::from_json_value(&doc)
    }

    /// Parses a spec from an already-parsed JSON value (the server's
    /// inline-submit path).
    ///
    /// # Errors
    ///
    /// [`ScenarioError`] for unknown/missing/mistyped fields or any
    /// validation failure — the same strictness as the `.scn` grammar.
    pub fn from_json_value(doc: &Json) -> Result<EngineSpec, ScenarioError> {
        let Json::Obj(fields) = doc else {
            return Err(invalid("spec", "expected a JSON object"));
        };
        const ALLOWED: &[&str] = &[
            "version",
            "name",
            "engine",
            "width",
            "height",
            "r",
            "t",
            "mf",
            "source_x",
            "source_y",
            "seed",
            "placement",
            "protocol",
            "adversary",
            "crash",
            "reactive",
            "agreement",
            "rbc",
            "probes",
        ];
        for (key, _) in fields {
            if !ALLOWED.contains(&key.as_str()) {
                return Err(ScenarioError::UnknownKey {
                    section: "spec".to_string(),
                    key: key.clone(),
                });
            }
        }
        if let Some(v) = doc.get("version") {
            let version = v
                .as_u64()
                .ok_or_else(|| invalid("spec.version", "expected an integer"))?;
            if version != u64::from(CACHE_SCHEMA_VERSION) {
                return Err(invalid(
                    "spec.version",
                    format!("unsupported spec version {version} (this build speaks {CACHE_SCHEMA_VERSION})"),
                ));
            }
        }
        let name = match doc.get("name") {
            None => "spec".to_string(),
            Some(v) => v
                .as_str()
                .ok_or_else(|| invalid("spec.name", "expected a string"))?
                .to_string(),
        };
        let engine_name = match doc.get("engine") {
            None => "counting",
            Some(v) => v
                .as_str()
                .ok_or_else(|| invalid("spec.engine", "expected a string"))?,
        };
        let engine = EngineKind::from_name(engine_name).ok_or_else(|| {
            invalid(
                "spec.engine",
                format!("unknown engine {engine_name:?} (counting|crash|slot|agreement|rbc)"),
            )
        })?;
        // `*_or`: absent ⇒ the grammar's default (unlike the strict
        // module-level `u32_field`/`u64_field`, which require the key).
        let u32_or = |key: &str, default: u32| -> Result<u32, ScenarioError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v
                    .as_u64()
                    .and_then(|n| u32::try_from(n).ok())
                    .ok_or_else(|| {
                        invalid(
                            &format!("spec.{key}"),
                            "expected a non-negative 32-bit integer",
                        )
                    }),
            }
        };
        let u64_or = |key: &str, default: u64| -> Result<u64, ScenarioError> {
            match doc.get(key) {
                None => Ok(default),
                Some(v) => v.as_u64().ok_or_else(|| {
                    invalid(&format!("spec.{key}"), "expected a non-negative integer")
                }),
            }
        };
        let width = doc
            .get("width")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| invalid("spec.width", "required non-negative 32-bit integer"))?;
        let height = doc
            .get("height")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| invalid("spec.height", "required non-negative 32-bit integer"))?;
        let r = doc
            .get("r")
            .and_then(Json::as_u64)
            .and_then(|n| u32::try_from(n).ok())
            .ok_or_else(|| invalid("spec.r", "required non-negative 32-bit integer"))?;
        let point = PointSpec {
            width,
            height,
            r,
            t: u32_or("t", 1)?,
            mf: u64_or("mf", 1)?,
            source: (u32_or("source_x", 0)?, u32_or("source_y", 0)?),
            seed: u64_or("seed", 0)?,
            placement: match doc.get("placement") {
                None => PlacementSpec::None,
                Some(v) => placement_from_json(v)?,
            },
            protocol: match doc.get("protocol") {
                None => ProtocolSpec::B,
                Some(v) => protocol_from_json(v)?,
            },
            adversary: match doc.get("adversary") {
                None => AdversarySpec::Oracle,
                Some(v) => {
                    let kind = v
                        .as_str()
                        .ok_or_else(|| invalid("spec.adversary", "expected a string"))?;
                    AdversarySpec::from_name(kind).ok_or_else(|| {
                        invalid(
                            "spec.adversary",
                            format!("unknown adversary {kind:?} (oracle|greedy|chaos|passive)"),
                        )
                    })?
                }
            },
            crash: match doc.get("crash") {
                None => None,
                Some(v) => Some(crash_from_json(v)?),
            },
            reactive: match doc.get("reactive") {
                None => ReactiveSpec::default(),
                Some(v) => reactive_from_json(v)?,
            },
            agreement: match doc.get("agreement") {
                None => AgreementSpec::default(),
                Some(v) => agreement_from_json(v)?,
            },
            rbc: match doc.get("rbc") {
                None => RbcSpec::default(),
                Some(v) => rbc_from_json(v)?,
            },
            label: Vec::new(),
        };
        let probes = match doc.get("probes") {
            None => Vec::new(),
            Some(v) => cells_from_json("spec.probes", v)?,
        };
        EngineSpec::from_parts(name, engine, point, probes)
    }
}

fn obj_fields<'a>(what: &str, v: &'a Json, allowed: &[&str]) -> Result<&'a Json, ScenarioError> {
    let Json::Obj(fields) = v else {
        return Err(invalid(what, "expected a JSON object"));
    };
    for (key, _) in fields {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::UnknownKey {
                section: what.to_string(),
                key: key.clone(),
            });
        }
    }
    Ok(v)
}

fn str_field<'a>(what: &str, v: &'a Json, key: &str) -> Result<&'a str, ScenarioError> {
    v.get(key)
        .and_then(Json::as_str)
        .ok_or_else(|| invalid(&format!("{what}.{key}"), "expected a string"))
}

fn u64_field(what: &str, v: &Json, key: &str) -> Result<u64, ScenarioError> {
    v.get(key)
        .and_then(Json::as_u64)
        .ok_or_else(|| invalid(&format!("{what}.{key}"), "expected a non-negative integer"))
}

fn u32_field(what: &str, v: &Json, key: &str) -> Result<u32, ScenarioError> {
    u64_field(what, v, key).and_then(|n| {
        u32::try_from(n).map_err(|_| invalid(&format!("{what}.{key}"), "expected a 32-bit integer"))
    })
}

fn f64_field(what: &str, v: &Json, key: &str) -> Result<f64, ScenarioError> {
    v.get(key)
        .and_then(Json::as_f64)
        .ok_or_else(|| invalid(&format!("{what}.{key}"), "expected a number"))
}

fn cells_from_json(what: &str, v: &Json) -> Result<Vec<(u32, u32)>, ScenarioError> {
    let items = v
        .as_array()
        .ok_or_else(|| invalid(what, "expected an array of [x, y] pairs"))?;
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let pair = item
            .as_array()
            .ok_or_else(|| invalid(what, "each entry must be an [x, y] pair"))?;
        let [x, y] = pair else {
            return Err(invalid(what, "each entry must be two integers"));
        };
        let (Some(x), Some(y)) = (x.as_u64(), y.as_u64()) else {
            return Err(invalid(what, "coordinates must be non-negative integers"));
        };
        let (Ok(x), Ok(y)) = (u32::try_from(x), u32::try_from(y)) else {
            return Err(invalid(what, "coordinates must fit 32 bits"));
        };
        out.push((x, y));
    }
    Ok(out)
}

fn placement_from_json(v: &Json) -> Result<PlacementSpec, ScenarioError> {
    let what = "spec.placement";
    obj_fields(
        what,
        v,
        &["kind", "offset", "stripes", "count", "p", "nodes"],
    )?;
    Ok(match str_field(what, v, "kind")? {
        "none" => PlacementSpec::None,
        "lattice" => PlacementSpec::Lattice {
            // Absent ⇒ the grammar's default offset, exactly as `.scn`.
            offset: match v.get("offset") {
                None => 1,
                Some(_) => u32_field(what, v, "offset")?,
            },
        },
        "stripes" => {
            let items = v
                .get("stripes")
                .and_then(Json::as_array)
                .ok_or_else(|| invalid(what, "stripes must be [[y0, t, above], ...]"))?;
            let mut stripes = Vec::with_capacity(items.len());
            for item in items {
                let triple = item
                    .as_array()
                    .ok_or_else(|| invalid(what, "each stripe is [y0, t, above]"))?;
                let [y0, t, above] = triple else {
                    return Err(invalid(what, "each stripe is [int y0, int t, bool above]"));
                };
                let (Some(y0), Some(t), Some(above)) = (
                    y0.as_u64().and_then(|n| u32::try_from(n).ok()),
                    t.as_u64().and_then(|n| u32::try_from(n).ok()),
                    above.as_bool(),
                ) else {
                    return Err(invalid(what, "each stripe is [int y0, int t, bool above]"));
                };
                stripes.push((y0, t, above));
            }
            PlacementSpec::Stripes(stripes)
        }
        "random" => PlacementSpec::Random {
            count: u64_field(what, v, "count")? as usize,
        },
        "bernoulli" => PlacementSpec::Bernoulli {
            p: f64_field(what, v, "p")?,
        },
        "explicit" => PlacementSpec::Explicit(cells_from_json(
            what,
            v.get("nodes")
                .ok_or_else(|| invalid(what, "explicit needs nodes"))?,
        )?),
        other => {
            return Err(invalid(
                what,
                format!("unknown kind {other:?} (none|lattice|stripes|random|bernoulli|explicit)"),
            ))
        }
    })
}

fn protocol_from_json(v: &Json) -> Result<ProtocolSpec, ScenarioError> {
    let what = "spec.protocol";
    obj_fields(what, v, &["kind", "m", "quorum"])?;
    Ok(match str_field(what, v, "kind")? {
        "b" => ProtocolSpec::B,
        "koo" => ProtocolSpec::Koo,
        "heter" => ProtocolSpec::Heter,
        "starved" => ProtocolSpec::Starved {
            m: u64_field(what, v, "m")?,
        },
        "majority" => ProtocolSpec::Majority {
            quorum: u64_field(what, v, "quorum")?,
        },
        "crash_only" => ProtocolSpec::CrashOnly,
        other => {
            return Err(invalid(
                what,
                format!("unknown kind {other:?} (b|koo|heter|starved|majority|crash_only)"),
            ))
        }
    })
}

fn crash_from_json(v: &Json) -> Result<CrashSpec, ScenarioError> {
    let what = "spec.crash";
    obj_fields(what, v, &["nodes", "behavior"])?;
    let nodes_v = v
        .get("nodes")
        .ok_or_else(|| invalid(what, "crash needs nodes"))?;
    obj_fields(
        "spec.crash.nodes",
        nodes_v,
        &["kind", "y0", "height", "nodes"],
    )?;
    let nodes = match str_field("spec.crash.nodes", nodes_v, "kind")? {
        "stripe" => CrashNodesSpec::Stripe {
            y0: u32_field("spec.crash.nodes", nodes_v, "y0")?,
            height: match nodes_v.get("height") {
                None => 1,
                Some(_) => u32_field("spec.crash.nodes", nodes_v, "height")?,
            },
        },
        "explicit" => CrashNodesSpec::Explicit(cells_from_json(
            "spec.crash.nodes",
            nodes_v
                .get("nodes")
                .ok_or_else(|| invalid("spec.crash.nodes", "explicit needs nodes"))?,
        )?),
        other => {
            return Err(invalid(
                "spec.crash.nodes",
                format!("unknown kind {other:?} (stripe|explicit)"),
            ))
        }
    };
    let behavior = match v.get("behavior") {
        None => CrashBehavior::Immediate,
        Some(behavior_v) => {
            obj_fields("spec.crash.behavior", behavior_v, &["kind", "after"])?;
            match str_field("spec.crash.behavior", behavior_v, "kind")? {
                "immediate" => CrashBehavior::Immediate,
                "after_quota" => CrashBehavior::AfterQuota,
                "after_copies" => CrashBehavior::AfterCopies(u64_field(
                    "spec.crash.behavior",
                    behavior_v,
                    "after",
                )?),
                other => {
                    return Err(invalid(
                        "spec.crash.behavior",
                        format!("unknown kind {other:?} (immediate|after_quota|after_copies)"),
                    ))
                }
            }
        }
    };
    Ok(CrashSpec { nodes, behavior })
}

fn reactive_from_json(v: &Json) -> Result<ReactiveSpec, ScenarioError> {
    let what = "spec.reactive";
    obj_fields(what, v, &["k", "mmax", "adversary", "budget", "max_rounds"])?;
    let defaults = ReactiveSpec::default();
    let adversary = match v.get("adversary") {
        None => defaults.adversary,
        Some(a) => {
            let name = a
                .as_str()
                .ok_or_else(|| invalid(&format!("{what}.adversary"), "expected a string"))?;
            reactive_adversary_from_name(name).ok_or_else(|| {
                invalid(
                    &format!("{what}.adversary"),
                    format!(
                        "unknown adversary {name:?} \
                         (passive|jammer|canceller|nack_forger|witness_forger|mixed)"
                    ),
                )
            })?
        }
    };
    let budget = match v.get("budget") {
        None | Some(Json::Null) => None,
        Some(b) => Some(
            b.as_u64()
                .ok_or_else(|| invalid(&format!("{what}.budget"), "expected null or an integer"))?,
        ),
    };
    Ok(ReactiveSpec {
        k: match v.get("k") {
            None => defaults.k,
            Some(_) => u64_field(what, v, "k")? as usize,
        },
        mmax: match v.get("mmax") {
            None => defaults.mmax,
            Some(_) => u64_field(what, v, "mmax")?,
        },
        adversary,
        budget,
        max_rounds: match v.get("max_rounds") {
            None => defaults.max_rounds,
            Some(_) => u64_field(what, v, "max_rounds")?,
        },
    })
}

fn agreement_from_json(v: &Json) -> Result<AgreementSpec, ScenarioError> {
    let what = "spec.agreement";
    obj_fields(what, v, &["mode", "source", "p1", "pe"])?;
    let defaults = AgreementSpec::default();
    let mode = match v.get("mode") {
        None => defaults.mode,
        Some(m) => {
            let name = m
                .as_str()
                .ok_or_else(|| invalid(&format!("{what}.mode"), "expected a string"))?;
            agreement_mode_from_name(name).ok_or_else(|| {
                invalid(
                    &format!("{what}.mode"),
                    format!("unknown mode {name:?} (cheap|proven)"),
                )
            })?
        }
    };
    let source = match v.get("source") {
        None => defaults.source,
        Some(s) => {
            let name = s
                .as_str()
                .ok_or_else(|| invalid(&format!("{what}.source"), "expected a string"))?;
            SourceSpec::from_name(name).ok_or_else(|| {
                invalid(
                    &format!("{what}.source"),
                    format!("unknown source {name:?} (correct|split|silent)"),
                )
            })?
        }
    };
    Ok(AgreementSpec {
        mode,
        source,
        p1: match v.get("p1") {
            None => defaults.p1,
            Some(_) => f64_field(what, v, "p1")?,
        },
        pe: match v.get("pe") {
            None => defaults.pe,
            Some(_) => f64_field(what, v, "pe")?,
        },
    })
}

fn rbc_from_json(v: &Json) -> Result<RbcSpec, ScenarioError> {
    let what = "spec.rbc";
    obj_fields(
        what,
        v,
        &["protocol", "payload", "max_waves", "schedule", "behavior"],
    )?;
    let defaults = RbcSpec::default();
    let protocol = match v.get("protocol") {
        None => defaults.protocol,
        Some(p) => {
            let name = p
                .as_str()
                .ok_or_else(|| invalid(&format!("{what}.protocol"), "expected a string"))?;
            RbcProtocol::from_name(name).ok_or_else(|| {
                invalid(
                    &format!("{what}.protocol"),
                    format!("unknown protocol {name:?} (counting|bracha|ctrbc)"),
                )
            })?
        }
    };
    let schedule = match v.get("schedule") {
        None => defaults.schedule,
        Some(p) => {
            let name = p
                .as_str()
                .ok_or_else(|| invalid(&format!("{what}.schedule"), "expected a string"))?;
            ScheduleKind::from_name(name).ok_or_else(|| {
                invalid(
                    &format!("{what}.schedule"),
                    format!(
                        "unknown schedule {name:?} \
                         (seeded|fifo|delay_quorum|targeted_reorder|gst)"
                    ),
                )
            })?
        }
    };
    let behavior = match v.get("behavior") {
        None => defaults.behavior,
        Some(p) => {
            let name = p
                .as_str()
                .ok_or_else(|| invalid(&format!("{what}.behavior"), "expected a string"))?;
            ByzantineBehavior::from_name(name).ok_or_else(|| {
                invalid(
                    &format!("{what}.behavior"),
                    format!(
                        "unknown behavior {name:?} \
                         (mute|equivocate|selective_send|stale_replay)"
                    ),
                )
            })?
        }
    };
    Ok(RbcSpec {
        protocol,
        payload: match v.get("payload") {
            None => defaults.payload,
            Some(_) => u32_field(what, v, "payload")?,
        },
        max_waves: match v.get("max_waves") {
            None => defaults.max_waves,
            Some(_) => u64_field(what, v, "max_waves")?,
        },
        schedule,
        behavior,
    })
}

// ---------------------------------------------------------------------
// .scn codec
// ---------------------------------------------------------------------

/// Escapes a string for a `.scn` quoted literal.
fn scn_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn scn_cells(cells: &[(u32, u32)]) -> String {
    let items: Vec<String> = cells.iter().map(|&(x, y)| format!("[{x}, {y}]")).collect();
    format!("[{}]", items.join(", "))
}

impl EngineSpec {
    /// Renders the spec as a canonical, sweep-free `.scn` document
    /// (every resolved value spelled out explicitly; sections that do
    /// not apply to the engine omitted).
    pub fn to_scn(&self) -> String {
        let p = &self.point;
        let mut s = String::new();
        let _ = writeln!(s, "name = {}", scn_string(&self.name));
        let _ = writeln!(s, "engine = {}", scn_string(self.engine.name()));
        let _ = writeln!(s, "seed = {}", p.seed);
        let _ = writeln!(s, "\n[topology]");
        let _ = writeln!(s, "width = {}", p.width);
        let _ = writeln!(s, "height = {}", p.height);
        let _ = writeln!(s, "r = {}", p.r);
        let _ = writeln!(s, "\n[faults]");
        let _ = writeln!(s, "t = {}", p.t);
        let _ = writeln!(s, "mf = {}", p.mf);
        let _ = writeln!(s, "\n[source]");
        let _ = writeln!(s, "x = {}", p.source.0);
        let _ = writeln!(s, "y = {}", p.source.1);
        let _ = writeln!(s, "\n[placement]");
        match &p.placement {
            PlacementSpec::None => {
                let _ = writeln!(s, "kind = \"none\"");
            }
            PlacementSpec::Lattice { offset } => {
                let _ = writeln!(s, "kind = \"lattice\"");
                let _ = writeln!(s, "offset = {offset}");
            }
            PlacementSpec::Stripes(stripes) => {
                let _ = writeln!(s, "kind = \"stripes\"");
                let items: Vec<String> = stripes
                    .iter()
                    .map(|&(y0, t, above)| format!("[{y0}, {t}, {above}]"))
                    .collect();
                let _ = writeln!(s, "stripes = [{}]", items.join(", "));
            }
            PlacementSpec::Random { count } => {
                let _ = writeln!(s, "kind = \"random\"");
                let _ = writeln!(s, "count = {count}");
            }
            PlacementSpec::Bernoulli { p: rate } => {
                let _ = writeln!(s, "kind = \"bernoulli\"");
                let _ = writeln!(s, "p = {rate}");
            }
            PlacementSpec::Explicit(cells) => {
                let _ = writeln!(s, "kind = \"explicit\"");
                let _ = writeln!(s, "nodes = {}", scn_cells(cells));
            }
        }
        if matches!(self.engine, EngineKind::Counting | EngineKind::Crash) {
            let _ = writeln!(s, "\n[protocol]");
            match p.protocol {
                ProtocolSpec::B => {
                    let _ = writeln!(s, "kind = \"b\"");
                }
                ProtocolSpec::Koo => {
                    let _ = writeln!(s, "kind = \"koo\"");
                }
                ProtocolSpec::Heter => {
                    let _ = writeln!(s, "kind = \"heter\"");
                }
                ProtocolSpec::Starved { m } => {
                    let _ = writeln!(s, "kind = \"starved\"");
                    let _ = writeln!(s, "m = {m}");
                }
                ProtocolSpec::Majority { quorum } => {
                    let _ = writeln!(s, "kind = \"majority\"");
                    let _ = writeln!(s, "quorum = {quorum}");
                }
                ProtocolSpec::CrashOnly => {
                    let _ = writeln!(s, "kind = \"crash_only\"");
                }
            }
        }
        if self.engine == EngineKind::Counting {
            let _ = writeln!(s, "\n[adversary]");
            let _ = writeln!(s, "kind = {}", scn_string(p.adversary.name()));
        }
        if let Some(crash) = &p.crash {
            let _ = writeln!(s, "\n[crash]");
            match &crash.nodes {
                CrashNodesSpec::Stripe { y0, height } => {
                    let _ = writeln!(s, "kind = \"stripe\"");
                    let _ = writeln!(s, "y0 = {y0}");
                    let _ = writeln!(s, "height = {height}");
                }
                CrashNodesSpec::Explicit(cells) => {
                    let _ = writeln!(s, "kind = \"explicit\"");
                    let _ = writeln!(s, "nodes = {}", scn_cells(cells));
                }
            }
            match crash.behavior {
                CrashBehavior::Immediate => {
                    let _ = writeln!(s, "behavior = \"immediate\"");
                }
                CrashBehavior::AfterQuota => {
                    let _ = writeln!(s, "behavior = \"after_quota\"");
                }
                CrashBehavior::AfterCopies(n) => {
                    let _ = writeln!(s, "after = {n}");
                }
            }
        }
        if self.engine == EngineKind::Slot {
            let _ = writeln!(s, "\n[reactive]");
            let _ = writeln!(s, "k = {}", p.reactive.k);
            let _ = writeln!(s, "mmax = {}", p.reactive.mmax);
            let _ = writeln!(
                s,
                "adversary = {}",
                scn_string(reactive_adversary_name(p.reactive.adversary))
            );
            if let Some(budget) = p.reactive.budget {
                let _ = writeln!(s, "budget = {budget}");
            }
            let _ = writeln!(s, "max_rounds = {}", p.reactive.max_rounds);
        }
        if self.engine == EngineKind::Agreement {
            let _ = writeln!(s, "\n[agreement]");
            let _ = writeln!(
                s,
                "mode = {}",
                scn_string(agreement_mode_name(p.agreement.mode))
            );
            let _ = writeln!(s, "source = {}", scn_string(p.agreement.source.name()));
            let _ = writeln!(s, "p1 = {}", p.agreement.p1);
            let _ = writeln!(s, "pe = {}", p.agreement.pe);
        }
        if self.engine == EngineKind::Rbc {
            let _ = writeln!(s, "\n[rbc]");
            let _ = writeln!(s, "protocol = {}", scn_string(p.rbc.protocol.name()));
            let _ = writeln!(s, "payload = {}", p.rbc.payload);
            let _ = writeln!(s, "max_waves = {}", p.rbc.max_waves);
            let _ = writeln!(s, "schedule = {}", scn_string(p.rbc.schedule.name()));
            let _ = writeln!(s, "behavior = {}", scn_string(p.rbc.behavior.name()));
        }
        if !self.probes.is_empty() {
            let _ = writeln!(s, "\n[probes]");
            let _ = writeln!(s, "nodes = {}", scn_cells(&self.probes));
        }
        s
    }

    /// Parses a spec from a sweep-free `.scn` document.
    ///
    /// # Errors
    ///
    /// Any [`ScenarioFile::parse`] error, or
    /// [`ScenarioError::Invalid`] when the document carries a `[sweep]`
    /// section expanding to more than one point (a spec is exactly one
    /// configuration — expand sweeps through [`ScenarioFile::specs`]).
    pub fn from_scn(text: &str) -> Result<EngineSpec, ScenarioError> {
        let file = ScenarioFile::parse(text)?;
        let mut specs = file.specs()?;
        if specs.len() != 1 {
            return Err(invalid(
                "spec",
                format!(
                    "document expands to {} sweep points; a spec is exactly one configuration",
                    specs.len()
                ),
            ));
        }
        Ok(specs.remove(0))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f2_spec() -> EngineSpec {
        EngineSpec::counting(45, 45, 4)
            .name("f2")
            .faults(1, 1000)
            .lattice_offset(41)
            .starved(59)
            .probes(&[(0, 5), (5, 1)])
            .finish()
            .unwrap()
    }

    #[test]
    fn builder_builds_the_figure2_engine() {
        let spec = f2_spec();
        let mut engine = spec.build_engine().unwrap();
        let outcome = engine.run_to_completion();
        let o = outcome.as_counting().unwrap();
        assert_eq!(o.accepted_true, 84, "stall at 84 decided nodes");
        let grid = engine.topology().grid();
        let p = engine.probe(grid.id_at(5, 1)).unwrap();
        assert_eq!(p.intake(), 1947);
        assert_eq!(p.tally_wrong, 947);
    }

    #[test]
    fn spec_key_matches_the_scenario_file_path() {
        let text = f2_spec().to_scn();
        let file = ScenarioFile::parse(&text).unwrap();
        let specs = file.specs().unwrap();
        assert_eq!(specs.len(), 1);
        assert_eq!(specs[0], f2_spec());
        assert_eq!(specs[0].cache_key(), f2_spec().cache_key());
    }

    #[test]
    fn json_and_scn_round_trip_all_engines() {
        let crash = EngineSpec::crash(20, 20, 2)
            .name("hybrid")
            .faults(1, 10)
            .lattice()
            .crash_stripe(9, 2)
            .crash_behavior(CrashBehavior::AfterCopies(3))
            .finish()
            .unwrap();
        let slot = EngineSpec::slot(15, 15, 1)
            .name("reactive")
            .faults(1, 4)
            .random_bad(8)
            .seed(42)
            .reactive(ReactiveSpec {
                k: 10,
                mmax: 1 << 12,
                adversary: ReactiveAdversary::Mixed,
                budget: Some(500),
                max_rounds: 10_000,
            })
            .probe(3, 3)
            .finish()
            .unwrap();
        let agreement = EngineSpec::agreement(15, 15, 2)
            .name("x4")
            .faults(1, 10)
            .source(7, 7)
            .bad_cells(&[(6, 8)])
            .agreement_config(AgreementSpec {
                mode: AgreementMode::Cheap,
                source: SourceSpec::Split,
                p1: 0.3,
                pe: 0.7,
            })
            .finish()
            .unwrap();
        let rbc = EngineSpec::rbc(15, 15, 1)
            .name("broadcast")
            .faults(2, 1)
            .bad_cells(&[(3, 3), (10, 11)])
            .seed(7)
            .rbc_config(RbcSpec {
                protocol: RbcProtocol::Ctrbc,
                payload: 4096,
                max_waves: 10_000,
                schedule: ScheduleKind::Gst,
                behavior: ByzantineBehavior::Equivocate,
            })
            .probe(7, 2)
            .finish()
            .unwrap();
        for spec in [f2_spec(), crash, slot, agreement, rbc] {
            let via_json = EngineSpec::from_json(&spec.to_json()).unwrap();
            assert_eq!(via_json, spec, "JSON round trip");
            let via_scn = EngineSpec::from_scn(&spec.to_scn()).unwrap();
            assert_eq!(via_scn, spec, "scn round trip");
            assert_eq!(via_json.cache_key(), spec.cache_key());
            assert_eq!(via_scn.cache_key(), spec.cache_key());
        }
    }

    #[test]
    fn json_field_order_is_irrelevant_but_fields_are_not() {
        let spec = f2_spec();
        // Hand-permuted field order: same spec, same key.
        let shuffled = concat!(
            "{\"probes\":[[0,5],[5,1]],\"engine\":\"counting\",",
            "\"placement\":{\"offset\":41,\"kind\":\"lattice\"},",
            "\"seed\":0,\"mf\":1000,\"t\":1,\"r\":4,\"height\":45,\"width\":45,",
            "\"source_y\":0,\"source_x\":0,\"name\":\"f2\",",
            "\"protocol\":{\"m\":59,\"kind\":\"starved\"},\"adversary\":\"oracle\"}",
        );
        let parsed = EngineSpec::from_json(shuffled).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.cache_key(), spec.cache_key());
        // A single changed field flips the key.
        let tweaked =
            EngineSpec::from_json(&spec.to_json().replace("\"mf\":1000", "\"mf\":999")).unwrap();
        assert_ne!(tweaked.cache_key(), spec.cache_key());
        // The name alone never does.
        let renamed =
            EngineSpec::from_json(&spec.to_json().replace("\"name\":\"f2\"", "\"name\":\"zz\""))
                .unwrap();
        assert_eq!(renamed.cache_key(), spec.cache_key());
    }

    #[test]
    fn unknown_and_mistyped_json_fields_are_rejected() {
        let spec = f2_spec();
        for bad in [
            spec.to_json().replace("\"mf\"", "\"mf_typo\""),
            spec.to_json()
                .replace("\"engine\":\"counting\"", "\"engine\":\"teleport\""),
            spec.to_json().replace("\"width\":45", "\"width\":\"45\""),
            "[1,2,3]".to_string(),
            "{\"width\":15,\"height\":15}".to_string(), // r missing
        ] {
            assert!(EngineSpec::from_json(&bad).is_err(), "{bad} accepted");
        }
    }

    #[test]
    fn cross_field_violations_fail_at_finish() {
        // A crash engine without a crash load.
        assert!(EngineSpec::crash(15, 15, 1).lattice().finish().is_err());
        // Majority off the counting engine / off the oracle.
        assert!(EngineSpec::crash(15, 15, 1)
            .crash_stripe(5, 1)
            .majority(9)
            .finish()
            .is_err());
        assert!(EngineSpec::counting(15, 15, 1)
            .majority(9)
            .greedy()
            .finish()
            .is_err());
        // Inapplicable sections carrying non-default values.
        assert!(EngineSpec::slot(15, 15, 1).starved(5).finish().is_err());
        assert!(EngineSpec::slot(15, 15, 1).greedy().finish().is_err());
        assert!(EngineSpec::counting(15, 15, 1)
            .reactive(ReactiveSpec {
                k: 9,
                ..ReactiveSpec::default()
            })
            .finish()
            .is_err());
        // Probe off the torus.
        assert!(EngineSpec::counting(15, 15, 1)
            .probe(99, 0)
            .finish()
            .is_err());
        // Slot payload width out of range.
        assert!(EngineSpec::slot(15, 15, 1)
            .reactive(ReactiveSpec {
                k: 100,
                ..ReactiveSpec::default()
            })
            .finish()
            .is_err());
        // A non-default rbc section off the rbc engine.
        assert!(EngineSpec::counting(15, 15, 1)
            .rbc_config(RbcSpec {
                payload: 128,
                ..RbcSpec::default()
            })
            .finish()
            .is_err());
        // CTRBC payload below the 2(t+1) fragment floor.
        assert!(EngineSpec::rbc(15, 15, 1)
            .faults(2, 1)
            .rbc_config(RbcSpec {
                protocol: RbcProtocol::Ctrbc,
                payload: 4,
                ..RbcSpec::default()
            })
            .finish()
            .is_err());
    }

    #[test]
    fn rbc_spec_builds_a_running_engine() {
        let spec = EngineSpec::rbc(15, 15, 1)
            .faults(1, 1)
            .bad_cells(&[(3, 3)])
            .seed(7)
            .finish()
            .unwrap();
        let mut engine = spec.build_engine().unwrap();
        let outcome = engine.run_to_completion();
        let o = outcome.as_rbc().unwrap();
        assert!(o.is_reliable(), "{o:?}");
        assert_eq!(o.good_nodes, 224);
    }

    #[test]
    fn sweep_documents_are_not_single_specs() {
        let err = EngineSpec::from_scn(concat!(
            "[topology]\nside = 15\nr = 1\n",
            "[protocol]\nkind = \"starved\"\nm = 1\n",
            "[sweep]\nm = [5, 6]\n",
        ))
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
    }

    #[test]
    fn scn_rendering_escapes_names() {
        let spec = EngineSpec::counting(15, 15, 1)
            .name("a \"quoted\"\nname # not a comment")
            .finish()
            .unwrap();
        let round = EngineSpec::from_scn(&spec.to_scn()).unwrap();
        assert_eq!(round.name(), spec.name());
        let via_json = EngineSpec::from_json(&spec.to_json()).unwrap();
        assert_eq!(via_json, spec);
    }
}
