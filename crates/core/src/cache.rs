//! The cache-key and result-codec layer between the batch runner and
//! [`bftbcast_store`].
//!
//! Every sweep point is deterministic given its fully-resolved
//! configuration, so an outcome computed once is an outcome computed
//! forever. This module defines what "the configuration" means:
//!
//! * [`point_key`] — the content hash of a canonical
//!   [`bftbcast_store::Record`] holding **every field the
//!   engines read**: engine kind, torus dimensions and range, fault
//!   parameters, source cell, seed, placement, protocol, adversary,
//!   crash/reactive/agreement configuration, and the probe list
//!   (probes shape the stored result, so they are part of the key).
//!   The sweep *label* is presentation, not configuration, and is
//!   deliberately excluded — two sweeps resolving to the same point
//!   share one cache entry.
//! * [`encode_result`] / [`decode_result`] — a versioned binary codec
//!   for [`PointResult`] (outcome + probes; the label is reattached by
//!   the caller). Full fidelity: a decoded result renders the same
//!   JSONL bytes as a fresh run.
//!
//! Any change to either format must bump [`CACHE_SCHEMA_VERSION`]:
//! the version participates in the hash, so old store entries simply
//! stop matching instead of being misread.

use bftbcast_net::Value;
use bftbcast_sim::crash::CrashBehavior;
use bftbcast_sim::engine::{EngineOutcome, Probe};
use bftbcast_sim::metrics::{CountingOutcome, RbcOutcome, ReactiveOutcome};
use bftbcast_store::Record;

use crate::batch::{PointResult, ProbeResult};
use crate::scenario_file::{CrashNodesSpec, EngineKind, PlacementSpec, PointSpec, ProtocolSpec};
use crate::spec::{agreement_mode_name, reactive_adversary_name};

/// Version of both the key record and the result encoding. Bump on any
/// schema change; old entries then miss instead of misdecoding.
///
/// v2: the rbc engine — an `rbc` record joins the key and
/// [`RbcOutcome`] joins the result codec.
///
/// v3: the rbc adversary axes — `schedule` and `behavior` join the
/// rbc key record, and per-node `phase` / `conflicts` join the probe
/// codec.
pub const CACHE_SCHEMA_VERSION: u16 = 3;

fn cells_list(cells: &[(u32, u32)]) -> Vec<Record> {
    cells
        .iter()
        .map(|&(x, y)| {
            Record::new(CACHE_SCHEMA_VERSION)
                .u64("x", u64::from(x))
                .u64("y", u64::from(y))
        })
        .collect()
}

fn placement_record(placement: &PlacementSpec) -> Record {
    let r = Record::new(CACHE_SCHEMA_VERSION);
    match placement {
        PlacementSpec::None => r.str("kind", "none"),
        PlacementSpec::Lattice { offset } => {
            r.str("kind", "lattice").u64("offset", u64::from(*offset))
        }
        PlacementSpec::Stripes(stripes) => r.str("kind", "stripes").list(
            "stripes",
            &stripes
                .iter()
                .map(|&(y0, t, above)| {
                    Record::new(CACHE_SCHEMA_VERSION)
                        .u64("y0", u64::from(y0))
                        .u64("t", u64::from(t))
                        .bool("above", above)
                })
                .collect::<Vec<_>>(),
        ),
        PlacementSpec::Random { count } => r.str("kind", "random").u64("count", *count as u64),
        PlacementSpec::Bernoulli { p } => r.str("kind", "bernoulli").f64("p", *p),
        PlacementSpec::Explicit(cells) => {
            r.str("kind", "explicit").list("nodes", &cells_list(cells))
        }
    }
}

fn protocol_record(protocol: &ProtocolSpec) -> Record {
    let r = Record::new(CACHE_SCHEMA_VERSION);
    match protocol {
        ProtocolSpec::B => r.str("kind", "b"),
        ProtocolSpec::Koo => r.str("kind", "koo"),
        ProtocolSpec::Heter => r.str("kind", "heter"),
        ProtocolSpec::Starved { m } => r.str("kind", "starved").u64("m", *m),
        ProtocolSpec::Majority { quorum } => r.str("kind", "majority").u64("quorum", *quorum),
        ProtocolSpec::CrashOnly => r.str("kind", "crash_only"),
    }
}

/// The content-hash cache key for one fully-resolved sweep point.
///
/// Stable across field order, process runs, and platforms (see
/// `bftbcast-store`'s canonical encoding); sensitive to every field an
/// engine reads. The sweep label is excluded by construction — it is
/// not an input to the run.
pub fn point_key(engine: EngineKind, point: &PointSpec, probes: &[(u32, u32)]) -> u64 {
    let mut r = Record::new(CACHE_SCHEMA_VERSION)
        .str("engine", engine.name())
        .u64("width", u64::from(point.width))
        .u64("height", u64::from(point.height))
        .u64("r", u64::from(point.r))
        .u64("t", u64::from(point.t))
        .u64("mf", point.mf)
        .u64("source_x", u64::from(point.source.0))
        .u64("source_y", u64::from(point.source.1))
        .u64("seed", point.seed)
        .record("placement", placement_record(&point.placement))
        .record("protocol", protocol_record(&point.protocol))
        .str("adversary", point.adversary.name())
        .list("probes", &cells_list(probes));
    if let Some(crash) = &point.crash {
        let nodes = match &crash.nodes {
            CrashNodesSpec::Stripe { y0, height } => Record::new(CACHE_SCHEMA_VERSION)
                .str("kind", "stripe")
                .u64("y0", u64::from(*y0))
                .u64("height", u64::from(*height)),
            CrashNodesSpec::Explicit(cells) => Record::new(CACHE_SCHEMA_VERSION)
                .str("kind", "explicit")
                .list("nodes", &cells_list(cells)),
        };
        let behavior = match crash.behavior {
            CrashBehavior::Immediate => Record::new(CACHE_SCHEMA_VERSION).str("kind", "immediate"),
            CrashBehavior::AfterQuota => {
                Record::new(CACHE_SCHEMA_VERSION).str("kind", "after_quota")
            }
            CrashBehavior::AfterCopies(n) => Record::new(CACHE_SCHEMA_VERSION)
                .str("kind", "after_copies")
                .u64("after", n),
        };
        r = r.record(
            "crash",
            Record::new(CACHE_SCHEMA_VERSION)
                .record("nodes", nodes)
                .record("behavior", behavior),
        );
    }
    r = r.record(
        "reactive",
        Record::new(CACHE_SCHEMA_VERSION)
            .u64("k", point.reactive.k as u64)
            .u64("mmax", point.reactive.mmax)
            .str(
                "adversary",
                reactive_adversary_name(point.reactive.adversary),
            )
            .u64("budget", point.reactive.budget.map_or(u64::MAX, |b| b))
            .bool("budget_set", point.reactive.budget.is_some())
            .u64("max_rounds", point.reactive.max_rounds),
    );
    r = r.record(
        "agreement",
        Record::new(CACHE_SCHEMA_VERSION)
            .str("mode", agreement_mode_name(point.agreement.mode))
            .str("source", point.agreement.source.name())
            .f64("p1", point.agreement.p1)
            .f64("pe", point.agreement.pe),
    );
    r = r.record(
        "rbc",
        Record::new(CACHE_SCHEMA_VERSION)
            .str("protocol", point.rbc.protocol.name())
            .u64("payload", u64::from(point.rbc.payload))
            .u64("max_waves", point.rbc.max_waves)
            .str("schedule", point.rbc.schedule.name())
            .str("behavior", point.rbc.behavior.name()),
    );
    r.content_hash()
}

// ---------------------------------------------------------------------
// Result codec
// ---------------------------------------------------------------------

/// Outcome kind bytes in the encoded payload.
const KIND_COUNTING: u8 = 0;
const KIND_REACTIVE: u8 = 1;
const KIND_AGREEMENT: u8 = 2;
const KIND_RBC: u8 = 3;

struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn usize(&mut self, v: usize) {
        self.u64(v as u64);
    }
    fn opt_value(&mut self, v: Option<Value>) {
        match v {
            None => self.u8(0),
            Some(Value(x)) => {
                self.u8(1);
                self.u64(x);
            }
        }
    }
    fn pairs(&mut self, pairs: &[(usize, Value)]) {
        self.usize(pairs.len());
        for &(node, Value(v)) in pairs {
            self.usize(node);
            self.u64(v);
        }
    }
}

struct Reader<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Reader<'_> {
    fn u8(&mut self) -> Option<u8> {
        let v = *self.bytes.get(self.pos)?;
        self.pos += 1;
        Some(v)
    }
    fn u64(&mut self) -> Option<u64> {
        let slice = self.bytes.get(self.pos..self.pos + 8)?;
        self.pos += 8;
        Some(u64::from_le_bytes(slice.try_into().expect("8 bytes")))
    }
    fn usize(&mut self) -> Option<usize> {
        usize::try_from(self.u64()?).ok()
    }
    fn opt_value(&mut self) -> Option<Option<Value>> {
        match self.u8()? {
            0 => Some(None),
            1 => Some(Some(Value(self.u64()?))),
            _ => None,
        }
    }
    fn pairs(&mut self) -> Option<Vec<(usize, Value)>> {
        let len = self.usize()?;
        if len > self.bytes.len() {
            return None; // corrupt length; avoid absurd allocations
        }
        let mut out = Vec::with_capacity(len);
        for _ in 0..len {
            let node = self.usize()?;
            let v = self.u64()?;
            out.push((node, Value(v)));
        }
        Some(out)
    }
}

/// Encodes a [`PointResult`]'s outcome and probes (not its label) as a
/// versioned byte string for the store.
pub fn encode_result(result: &PointResult) -> Vec<u8> {
    let mut w = Writer(Vec::with_capacity(128));
    w.u8(CACHE_SCHEMA_VERSION as u8);
    match &result.outcome {
        EngineOutcome::Counting(o) => {
            w.u8(KIND_COUNTING);
            w.usize(o.good_nodes);
            w.usize(o.accepted_true);
            w.usize(o.wrong_accepts);
            w.usize(o.waves);
            w.u64(o.good_copies_sent);
            w.u64(o.source_copies_sent);
            w.u64(o.adversary_spent);
        }
        EngineOutcome::Reactive(o) => {
            w.u8(KIND_REACTIVE);
            w.usize(o.good_nodes);
            w.usize(o.committed_true);
            w.usize(o.committed_wrong);
            w.u64(o.rounds);
            w.u64(o.data_transmissions);
            w.u64(o.nack_transmissions);
            w.u64(o.max_node_messages);
            w.u64(o.subbits_per_message);
            w.u64(o.adversary_spent);
            w.u64(o.detections);
            w.u64(o.undetected_corruptions);
            w.usize(o.uncommitted.len());
            for &node in &o.uncommitted {
                w.usize(node);
            }
        }
        EngineOutcome::Agreement(o) => {
            w.u8(KIND_AGREEMENT);
            w.u8(u8::from(o.source_correct));
            w.pairs(&o.decisions);
            w.pairs(&o.proposals);
            w.pairs(&o.aggregates);
        }
        EngineOutcome::Rbc(o) => {
            w.u8(KIND_RBC);
            w.usize(o.good_nodes);
            w.usize(o.delivered);
            w.u64(o.messages);
            w.u64(o.wire_bits);
            w.u64(o.waves);
            w.u64(o.echoes_sent);
            w.u64(o.readies_sent);
        }
    }
    w.usize(result.probes.len());
    for p in &result.probes {
        w.u64(u64::from(p.x));
        w.u64(u64::from(p.y));
        w.usize(p.node);
        w.u64(p.probe.tally_true);
        w.u64(p.probe.tally_wrong);
        w.usize(p.probe.decided_neighbors);
        w.opt_value(p.probe.accepted);
        w.u64(p.probe.phase);
        w.u64(p.probe.conflicts);
    }
    w.0
}

/// Decodes a stored result back into a [`PointResult`] with an empty
/// label (the caller reattaches the current sweep point's label).
/// `None` means the bytes are corrupt or from an incompatible version.
pub fn decode_result(bytes: &[u8]) -> Option<PointResult> {
    let mut r = Reader { bytes, pos: 0 };
    if r.u8()? != CACHE_SCHEMA_VERSION as u8 {
        return None;
    }
    let outcome = match r.u8()? {
        KIND_COUNTING => EngineOutcome::Counting(CountingOutcome {
            good_nodes: r.usize()?,
            accepted_true: r.usize()?,
            wrong_accepts: r.usize()?,
            waves: r.usize()?,
            good_copies_sent: r.u64()?,
            source_copies_sent: r.u64()?,
            adversary_spent: r.u64()?,
        }),
        KIND_REACTIVE => {
            let good_nodes = r.usize()?;
            let committed_true = r.usize()?;
            let committed_wrong = r.usize()?;
            let rounds = r.u64()?;
            let data_transmissions = r.u64()?;
            let nack_transmissions = r.u64()?;
            let max_node_messages = r.u64()?;
            let subbits_per_message = r.u64()?;
            let adversary_spent = r.u64()?;
            let detections = r.u64()?;
            let undetected_corruptions = r.u64()?;
            let n = r.usize()?;
            if n > bytes.len() {
                return None;
            }
            let mut uncommitted = Vec::with_capacity(n);
            for _ in 0..n {
                uncommitted.push(r.usize()?);
            }
            EngineOutcome::Reactive(ReactiveOutcome {
                good_nodes,
                committed_true,
                committed_wrong,
                rounds,
                data_transmissions,
                nack_transmissions,
                max_node_messages,
                subbits_per_message,
                adversary_spent,
                detections,
                undetected_corruptions,
                uncommitted,
            })
        }
        KIND_AGREEMENT => {
            let source_correct = match r.u8()? {
                0 => false,
                1 => true,
                _ => return None,
            };
            EngineOutcome::Agreement(bftbcast_sim::agreement::AgreementOutcome {
                source_correct,
                decisions: r.pairs()?,
                proposals: r.pairs()?,
                aggregates: r.pairs()?,
            })
        }
        KIND_RBC => EngineOutcome::Rbc(RbcOutcome {
            good_nodes: r.usize()?,
            delivered: r.usize()?,
            messages: r.u64()?,
            wire_bits: r.u64()?,
            waves: r.u64()?,
            echoes_sent: r.u64()?,
            readies_sent: r.u64()?,
        }),
        _ => return None,
    };
    let n = r.usize()?;
    if n > bytes.len() {
        return None;
    }
    let mut probes = Vec::with_capacity(n);
    for _ in 0..n {
        probes.push(ProbeResult {
            x: u32::try_from(r.u64()?).ok()?,
            y: u32::try_from(r.u64()?).ok()?,
            node: r.usize()?,
            probe: Probe {
                tally_true: r.u64()?,
                tally_wrong: r.u64()?,
                decided_neighbors: r.usize()?,
                accepted: r.opt_value()?,
                phase: r.u64()?,
                conflicts: r.u64()?,
            },
        });
    }
    if r.pos != bytes.len() {
        return None; // trailing garbage
    }
    Some(PointResult {
        point: Vec::new(),
        outcome,
        probes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenario_file::{AdversarySpec, ScenarioFile};
    use bftbcast_sim::agreement::AgreementOutcome;

    fn f2_file() -> ScenarioFile {
        ScenarioFile::parse(concat!(
            "name = \"f2\"\n",
            "[topology]\nwidth = 45\nheight = 45\nr = 4\n",
            "[faults]\nt = 1\nmf = 1000\n",
            "[placement]\nkind = \"lattice\"\noffset = 41\n",
            "[protocol]\nkind = \"starved\"\nm = 59\n",
            "[probes]\nnodes = [[0, 5], [5, 1]]\n",
        ))
        .unwrap()
    }

    #[test]
    fn key_is_deterministic_and_label_free() {
        let file = f2_file();
        let mut point = file.points().remove(0);
        let key = point_key(file.engine, &point, &file.probes);
        assert_eq!(key, point_key(file.engine, &point, &file.probes));
        // The label is presentation: it never reaches the key.
        point.label.push(("m".into(), "59".into()));
        assert_eq!(key, point_key(file.engine, &point, &file.probes));
    }

    #[test]
    fn key_is_sensitive_to_every_layer() {
        let file = f2_file();
        let base = file.points().remove(0);
        let key = point_key(file.engine, &base, &file.probes);
        let mut cases: Vec<PointSpec> = Vec::new();
        let with = |f: &dyn Fn(&mut PointSpec)| {
            let mut p = base.clone();
            f(&mut p);
            p
        };
        cases.push(with(&|p| p.mf += 1));
        cases.push(with(&|p| p.seed += 1));
        cases.push(with(&|p| p.source = (1, 0)));
        cases.push(with(&|p| {
            p.placement = PlacementSpec::Lattice { offset: 40 }
        }));
        cases.push(with(&|p| p.protocol = ProtocolSpec::Starved { m: 60 }));
        cases.push(with(&|p| p.adversary = AdversarySpec::Passive));
        cases.push(with(&|p| p.reactive.k = 9));
        cases.push(with(&|p| p.agreement.p1 = 0.5));
        cases.push(with(&|p| p.rbc.payload = 128));
        cases.push(with(&|p| p.rbc.protocol = bftbcast_rbc::RbcProtocol::Ctrbc));
        cases.push(with(&|p| p.rbc.schedule = bftbcast_rbc::ScheduleKind::Gst));
        cases.push(with(&|p| {
            p.rbc.behavior = bftbcast_rbc::ByzantineBehavior::Equivocate
        }));
        for (i, p) in cases.iter().enumerate() {
            assert_ne!(key, point_key(file.engine, p, &file.probes), "case {i}");
        }
        // Engine kind and probe list are part of the key too.
        assert_ne!(key, point_key(EngineKind::Crash, &base, &file.probes));
        assert_ne!(key, point_key(file.engine, &base, &[(0, 5)]));
    }

    #[test]
    fn counting_result_round_trips() {
        let result = PointResult {
            point: vec![("m".into(), "59".into())],
            outcome: EngineOutcome::Counting(CountingOutcome {
                good_nodes: 2000,
                accepted_true: 84,
                wrong_accepts: 0,
                waves: 17,
                good_copies_sent: 12345,
                source_copies_sent: 2001,
                adversary_spent: 999_999,
            }),
            probes: vec![ProbeResult {
                x: 5,
                y: 1,
                node: 50,
                probe: Probe {
                    tally_true: 1000,
                    tally_wrong: 947,
                    decided_neighbors: 3,
                    accepted: None,
                    ..Probe::default()
                },
            }],
        };
        let decoded = decode_result(&encode_result(&result)).unwrap();
        assert_eq!(decoded.outcome, result.outcome);
        assert_eq!(decoded.probes.len(), 1);
        assert_eq!(decoded.probes[0].probe, result.probes[0].probe);
        assert!(decoded.point.is_empty(), "labels are not stored");
    }

    #[test]
    fn reactive_and_agreement_results_round_trip() {
        let reactive = PointResult {
            point: Vec::new(),
            outcome: EngineOutcome::Reactive(ReactiveOutcome {
                good_nodes: 25,
                committed_true: 24,
                committed_wrong: 0,
                rounds: 500,
                data_transmissions: 60,
                nack_transmissions: 12,
                max_node_messages: 9,
                subbits_per_message: 3198,
                adversary_spent: 30,
                detections: 12,
                undetected_corruptions: 0,
                uncommitted: vec![7],
            }),
            probes: Vec::new(),
        };
        assert_eq!(
            decode_result(&encode_result(&reactive)).unwrap().outcome,
            reactive.outcome
        );
        let agreement = PointResult {
            point: Vec::new(),
            outcome: EngineOutcome::Agreement(AgreementOutcome {
                decisions: vec![(3, Value(2)), (4, Value(2))],
                source_correct: false,
                proposals: vec![(3, Value(2))],
                aggregates: vec![(4, Value(3))],
            }),
            probes: vec![ProbeResult {
                x: 0,
                y: 0,
                node: 0,
                probe: Probe {
                    tally_true: 1,
                    tally_wrong: 0,
                    decided_neighbors: 0,
                    accepted: Some(Value::TRUE),
                    ..Probe::default()
                },
            }],
        };
        let decoded = decode_result(&encode_result(&agreement)).unwrap();
        assert_eq!(decoded.outcome, agreement.outcome);
        assert_eq!(decoded.probes[0].probe.accepted, Some(Value::TRUE));
    }

    #[test]
    fn rbc_results_round_trip() {
        let rbc = PointResult {
            point: Vec::new(),
            outcome: EngineOutcome::Rbc(RbcOutcome {
                good_nodes: 223,
                delivered: 223,
                messages: 98_765,
                wire_bits: 4_321_000,
                waves: 17,
                echoes_sent: 223,
                readies_sent: 223,
            }),
            probes: vec![ProbeResult {
                x: 7,
                y: 2,
                node: 37,
                probe: Probe {
                    tally_true: 223,
                    tally_wrong: 223,
                    decided_neighbors: 8,
                    accepted: Some(Value::TRUE),
                    phase: 3,
                    conflicts: 2,
                },
            }],
        };
        let decoded = decode_result(&encode_result(&rbc)).unwrap();
        assert_eq!(decoded.outcome, rbc.outcome);
        assert_eq!(decoded.probes[0].probe, rbc.probes[0].probe);
    }

    #[test]
    fn corrupt_bytes_decode_to_none() {
        let good = encode_result(&PointResult {
            point: Vec::new(),
            outcome: EngineOutcome::Counting(CountingOutcome {
                good_nodes: 1,
                accepted_true: 1,
                wrong_accepts: 0,
                waves: 1,
                good_copies_sent: 0,
                source_copies_sent: 0,
                adversary_spent: 0,
            }),
            probes: Vec::new(),
        });
        assert!(decode_result(&[]).is_none());
        assert!(decode_result(&[99]).is_none(), "unknown version");
        assert!(
            decode_result(&good[..good.len() - 1]).is_none(),
            "truncated"
        );
        let mut trailing = good.clone();
        trailing.push(0);
        assert!(decode_result(&trailing).is_none(), "trailing garbage");
        assert!(decode_result(&good).is_some());
    }
}
