//! Convenience re-exports for typical use.
//!
//! ```
//! use bftbcast::prelude::*;
//! let p = Params::new(4, 1, 1000);
//! assert_eq!(p.m0(), 58);
//! ```

pub use crate::batch::{
    run_file, run_file_with, BatchOptions, BatchReport, PointResult, ProbeResult,
};
pub use crate::scenario::{Adversary, Scenario, ScenarioBuilder, ScenarioError};
pub use crate::scenario_file::{EngineKind, PointSpec, ScenarioFile};
pub use bftbcast_adversary::probabilistic::{
    critical_p, local_bound_holds_probability, BernoulliPlacement,
};
pub use bftbcast_net::{Budget, Cross, Disc, Grid, NodeId, Rect, Region, Schedule, Stripe, Value};
pub use bftbcast_protocols::agreement::{AgreementConfig, CONFLICT, DEFAULT_VALUE};
pub use bftbcast_protocols::bounds::{
    corollary1_max_tolerable_t, corollary1_min_defeating_t, reactive_max_t, theorem4_budget,
};
pub use bftbcast_protocols::{CountingProtocol, Params};
pub use bftbcast_sim::agreement::{AgreementSim, SourceBehavior, SplitAttack};
pub use bftbcast_sim::crash::{
    crash_only_protocol, crash_stripe, crash_threshold, CrashBehavior, HybridSim,
};
pub use bftbcast_sim::engine::{EngineOutcome, Probe, SimEngine};
pub use bftbcast_sim::metrics::{CountingOutcome, ReactiveOutcome};
pub use bftbcast_sim::runner::{sweep, Table};
pub use bftbcast_sim::slot::ReactiveAdversary;
pub use bftbcast_viz::{CellStyle, GridMap, LineChart};
