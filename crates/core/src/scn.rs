//! A dependency-free parser for the TOML subset used by `*.scn`
//! scenario files.
//!
//! The subset is deliberately small — exactly what declarative
//! scenarios need, nothing more:
//!
//! * `[section]` headers and `key = value` pairs (a document is a flat
//!   list of sections; keys before the first header belong to the
//!   top-level section `""`);
//! * values: quoted strings (`"0..8"`, with `\"` `\\` `\n` `\t`
//!   escapes), integers (full `u64` range — literals above `i64::MAX`
//!   parse as [`ScnValue::BigInt`]), floats, booleans, and single-line
//!   arrays of values (nesting allowed: `[[0, 5], [5, 1]]`);
//! * `#` comments anywhere outside a string.
//!
//! Not supported (and rejected with a line-numbered error rather than
//! silently misread): multi-line arrays, inline tables, arrays of
//! tables, dotted keys, datetimes, duplicate keys or sections.
//!
//! The parser stops at the value model; typing the document against the
//! scenario grammar (known sections, known keys, engine-specific
//! validation) happens in [`crate::scenario_file`].
//!
//! ```
//! use bftbcast::scn::{parse, ScnValue};
//!
//! let doc = parse(
//!     "engine = \"counting\"\n[topology]\nr = 4  # radio range\n",
//! )
//! .unwrap();
//! assert_eq!(
//!     doc.section("").unwrap().get("engine"),
//!     Some(&ScnValue::Str("counting".into()))
//! );
//! assert_eq!(
//!     doc.section("topology").unwrap().get("r"),
//!     Some(&ScnValue::Int(4))
//! );
//! ```

use core::fmt;

/// A parse error with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScnError {
    /// 1-based line number of the offending text.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ScnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ScnError {}

/// A parsed value.
#[derive(Debug, Clone, PartialEq)]
pub enum ScnValue {
    /// A quoted string.
    Str(String),
    /// An integer literal.
    Int(i64),
    /// An unsigned integer literal above `i64::MAX` (full-range `u64`
    /// fields — seeds, budgets — stay representable and lossless).
    BigInt(u64),
    /// A float literal (contains `.`, `e`, or `E`).
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A single-line `[ ... ]` array, possibly nested.
    Array(Vec<ScnValue>),
}

impl ScnValue {
    /// Short value-kind name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            ScnValue::Str(_) => "string",
            ScnValue::Int(_) | ScnValue::BigInt(_) => "integer",
            ScnValue::Float(_) => "float",
            ScnValue::Bool(_) => "boolean",
            ScnValue::Array(_) => "array",
        }
    }
}

/// One `[section]` with its key/value entries in file order.
#[derive(Debug, Clone, PartialEq)]
pub struct ScnSection {
    /// Section name (`""` for keys before the first header).
    pub name: String,
    /// 1-based line of the header (0 for the top-level section).
    pub line: usize,
    /// `(key, value, line)` in file order.
    pub entries: Vec<(String, ScnValue, usize)>,
}

impl ScnSection {
    /// Looks a key up.
    pub fn get(&self, key: &str) -> Option<&ScnValue> {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map(|(_, v, _)| v)
    }

    /// The source line of a key (for error reporting).
    pub fn line_of(&self, key: &str) -> usize {
        self.entries
            .iter()
            .find(|(k, _, _)| k == key)
            .map_or(self.line, |&(_, _, line)| line)
    }
}

/// A parsed document: sections in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ScnDoc {
    /// All sections, top-level (`""`) first when present.
    pub sections: Vec<ScnSection>,
}

impl ScnDoc {
    /// Looks a section up by name (`""` = top level).
    pub fn section(&self, name: &str) -> Option<&ScnSection> {
        self.sections.iter().find(|s| s.name == name)
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '-'
}

/// Strips a trailing `#` comment, respecting strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut escaped = false;
    for (i, c) in line.char_indices() {
        if in_str {
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
        } else if c == '"' {
            in_str = true;
        } else if c == '#' {
            return &line[..i];
        }
    }
    line
}

struct ValueParser {
    chars: Vec<char>,
    pos: usize,
    line: usize,
}

impl ValueParser {
    fn new(text: &str, line: usize) -> Self {
        ValueParser {
            chars: text.chars().collect(),
            pos: 0,
            line,
        }
    }

    fn err(&self, message: impl Into<String>) -> ScnError {
        ScnError {
            line: self.line,
            message: message.into(),
        }
    }

    fn skip_ws(&mut self) {
        while self.pos < self.chars.len() && self.chars[self.pos].is_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).copied()
    }

    fn value(&mut self) -> Result<ScnValue, ScnError> {
        self.skip_ws();
        match self.peek() {
            None => Err(self.err("expected a value")),
            Some('"') => self.string(),
            Some('[') => self.array(),
            Some(c) if c.is_ascii_alphabetic() => self.boolean(),
            Some(_) => self.number(),
        }
    }

    fn string(&mut self) -> Result<ScnValue, ScnError> {
        self.pos += 1; // opening quote
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some('"') => {
                    self.pos += 1;
                    return Ok(ScnValue::Str(out));
                }
                Some('\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("dangling escape"))?;
                    out.push(match esc {
                        '"' => '"',
                        '\\' => '\\',
                        'n' => '\n',
                        't' => '\t',
                        other => return Err(self.err(format!("unknown escape \\{other}"))),
                    });
                    self.pos += 1;
                }
                Some(c) => {
                    out.push(c);
                    self.pos += 1;
                }
            }
        }
    }

    fn array(&mut self) -> Result<ScnValue, ScnError> {
        self.pos += 1; // '['
        let mut items = Vec::new();
        loop {
            self.skip_ws();
            match self.peek() {
                None => return Err(self.err("unterminated array (arrays are single-line)")),
                // ']' here also accepts one trailing comma, as in TOML.
                Some(']') => {
                    self.pos += 1;
                    return Ok(ScnValue::Array(items));
                }
                Some(',') => return Err(self.err("unexpected ',' in array")),
                Some(_) => {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.peek() {
                        Some(',') => {
                            self.pos += 1;
                        }
                        Some(']') | None => {}
                        Some(other) => {
                            return Err(
                                self.err(format!("expected ',' or ']' in array, found {other:?}"))
                            )
                        }
                    }
                }
            }
        }
    }

    fn boolean(&mut self) -> Result<ScnValue, ScnError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_alphabetic()) {
            self.pos += 1;
        }
        let word: String = self.chars[start..self.pos].iter().collect();
        match word.as_str() {
            "true" => Ok(ScnValue::Bool(true)),
            "false" => Ok(ScnValue::Bool(false)),
            other => Err(self.err(format!(
                "unknown literal {other:?} (strings must be quoted)"
            ))),
        }
    }

    fn number(&mut self) -> Result<ScnValue, ScnError> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_digit() || "+-._eE".contains(c))
        {
            self.pos += 1;
        }
        let raw: String = self.chars[start..self.pos].iter().collect();
        let clean = raw.replace('_', "");
        if clean.is_empty() {
            return Err(self.err(format!(
                "expected a value, found {:?}",
                self.peek().map(String::from).unwrap_or_default()
            )));
        }
        if clean.contains(['.', 'e', 'E']) {
            clean
                .parse::<f64>()
                .map(ScnValue::Float)
                .map_err(|_| self.err(format!("invalid float {raw:?}")))
        } else if let Ok(i) = clean.parse::<i64>() {
            Ok(ScnValue::Int(i))
        } else {
            // Above i64::MAX: still a valid u64 literal.
            clean
                .parse::<u64>()
                .map(ScnValue::BigInt)
                .map_err(|_| self.err(format!("invalid integer {raw:?}")))
        }
    }

    fn finish(&mut self) -> Result<(), ScnError> {
        self.skip_ws();
        match self.peek() {
            None => Ok(()),
            Some(c) => Err(self.err(format!("trailing text starting at {c:?} after value"))),
        }
    }
}

/// Parses a scenario document.
///
/// # Errors
///
/// [`ScnError`] with the 1-based line of the first offending construct.
pub fn parse(text: &str) -> Result<ScnDoc, ScnError> {
    let mut doc = ScnDoc::default();
    let mut current: Option<usize> = None; // index into doc.sections

    for (idx, raw_line) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw_line).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest.strip_suffix(']').ok_or(ScnError {
                line: line_no,
                message: "section header missing closing ']'".into(),
            })?;
            let name = name.trim();
            if name.is_empty() || !name.chars().all(is_ident_char) {
                return Err(ScnError {
                    line: line_no,
                    message: format!("invalid section name {name:?}"),
                });
            }
            if doc.section(name).is_some() {
                return Err(ScnError {
                    line: line_no,
                    message: format!("duplicate section [{name}]"),
                });
            }
            doc.sections.push(ScnSection {
                name: name.to_string(),
                line: line_no,
                entries: Vec::new(),
            });
            current = Some(doc.sections.len() - 1);
            continue;
        }
        let Some(eq) = line.find('=') else {
            return Err(ScnError {
                line: line_no,
                message: format!("expected `key = value` or `[section]`, found {line:?}"),
            });
        };
        let key = line[..eq].trim();
        if key.is_empty() || !key.chars().all(is_ident_char) {
            return Err(ScnError {
                line: line_no,
                message: format!("invalid key {key:?}"),
            });
        }
        let mut parser = ValueParser::new(&line[eq + 1..], line_no);
        let value = parser.value()?;
        parser.finish()?;

        let section_idx = match current {
            Some(i) => i,
            None => {
                // Implicit top-level section.
                if doc.section("").is_none() {
                    doc.sections.insert(
                        0,
                        ScnSection {
                            name: String::new(),
                            line: 0,
                            entries: Vec::new(),
                        },
                    );
                }
                0
            }
        };
        let section = &mut doc.sections[section_idx];
        if section.get(key).is_some() {
            return Err(ScnError {
                line: line_no,
                message: format!("duplicate key {key:?} in section [{}]", section.name),
            });
        }
        section.entries.push((key.to_string(), value, line_no));
    }
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_sections_keys_and_value_kinds() {
        let doc = parse(concat!(
            "name = \"f2\"\n",
            "threshold = 1.5\n",
            "enabled = true\n",
            "\n",
            "[topology]  # the torus\n",
            "r = 4\n",
            "big = 1_000\n",
            "[probes]\n",
            "nodes = [[0, 5], [5, 1]]\n",
        ))
        .unwrap();
        let top = doc.section("").unwrap();
        assert_eq!(top.get("name"), Some(&ScnValue::Str("f2".into())));
        assert_eq!(top.get("threshold"), Some(&ScnValue::Float(1.5)));
        assert_eq!(top.get("enabled"), Some(&ScnValue::Bool(true)));
        let topo = doc.section("topology").unwrap();
        assert_eq!(topo.get("r"), Some(&ScnValue::Int(4)));
        assert_eq!(topo.get("big"), Some(&ScnValue::Int(1000)));
        let probes = doc.section("probes").unwrap();
        assert_eq!(
            probes.get("nodes"),
            Some(&ScnValue::Array(vec![
                ScnValue::Array(vec![ScnValue::Int(0), ScnValue::Int(5)]),
                ScnValue::Array(vec![ScnValue::Int(5), ScnValue::Int(1)]),
            ]))
        );
    }

    #[test]
    fn comments_and_strings_interact_correctly() {
        let doc = parse("s = \"a # not a comment\" # a real one\n").unwrap();
        assert_eq!(
            doc.section("").unwrap().get("s"),
            Some(&ScnValue::Str("a # not a comment".into()))
        );
    }

    #[test]
    fn string_escapes() {
        let doc = parse(r#"s = "a\"b\\c\nd""#).unwrap();
        assert_eq!(
            doc.section("").unwrap().get("s"),
            Some(&ScnValue::Str("a\"b\\c\nd".into()))
        );
    }

    #[test]
    fn rejects_malformed_lines_with_line_numbers() {
        for (text, line, needle) in [
            ("a = 1\nbogus line\n", 2, "key = value"),
            ("[unclosed\n", 1, "closing"),
            ("a = \n", 1, "expected a value"),
            ("a = 1 2\n", 1, "trailing text"),
            ("a = \"open\n", 1, "unterminated string"),
            ("a = [1, 2\n", 1, "unterminated array"),
            ("a = maybe\n", 1, "unknown literal"),
            ("a = 1..5\n", 1, "invalid float"),
            ("1bad-key? = 2\n", 1, "invalid key"),
            ("[]\n", 1, "invalid section name"),
        ] {
            let err = parse(text).unwrap_err();
            assert_eq!(err.line, line, "{text:?}");
            assert!(
                err.message.contains(needle),
                "{text:?} gave {:?}",
                err.message
            );
        }
    }

    #[test]
    fn rejects_stray_commas_but_allows_one_trailing() {
        for text in ["a = [1,,2]\n", "a = [,1]\n", "a = [[0, 5],, [5, 1]]\n"] {
            let err = parse(text).unwrap_err();
            assert!(
                err.message.contains("unexpected ','"),
                "{text:?} gave {:?}",
                err.message
            );
        }
        let doc = parse("a = [1, 2,]\n").unwrap();
        assert_eq!(
            doc.section("").unwrap().get("a"),
            Some(&ScnValue::Array(vec![ScnValue::Int(1), ScnValue::Int(2)]))
        );
    }

    #[test]
    fn rejects_duplicates() {
        assert!(parse("a = 1\na = 2\n")
            .unwrap_err()
            .message
            .contains("duplicate key"));
        assert!(parse("[s]\n[s]\n")
            .unwrap_err()
            .message
            .contains("duplicate section"));
    }

    #[test]
    fn negative_and_float_numbers() {
        let doc = parse("a = -3\nb = 0.25\nc = 1e3\n").unwrap();
        let top = doc.section("").unwrap();
        assert_eq!(top.get("a"), Some(&ScnValue::Int(-3)));
        assert_eq!(top.get("b"), Some(&ScnValue::Float(0.25)));
        assert_eq!(top.get("c"), Some(&ScnValue::Float(1000.0)));
    }

    #[test]
    fn integers_above_i64_parse_as_bigint() {
        let doc = parse(&format!("a = {}\nb = {}\n", u64::MAX, i64::MAX)).unwrap();
        let top = doc.section("").unwrap();
        assert_eq!(top.get("a"), Some(&ScnValue::BigInt(u64::MAX)));
        assert_eq!(top.get("b"), Some(&ScnValue::Int(i64::MAX)));
        // Still an error beyond u64.
        assert!(parse("a = 99999999999999999999999\n").is_err());
    }

    #[test]
    fn empty_document_is_fine() {
        assert_eq!(parse("").unwrap().sections.len(), 0);
        assert_eq!(parse("# only comments\n\n").unwrap().sections.len(), 0);
    }
}
