//! The high-level builder API: describe a network + fault assumption
//! once, then run any of the paper's protocols against any adversary.
//!
//! A [`Scenario`] is the validated triple *(torus, fault parameters,
//! bad-node placement)*. The builder checks the model's side conditions
//! — a well-formed grid, the local bound `t` — at [`ScenarioBuilder::build`]
//! time, so every run method on the resulting scenario starts from a
//! legal configuration. The `run_*` methods cover the paper's protocol
//! family (B, the starved variant, Bheter, Breactive, the Koo
//! baseline) and the engines behind them; [`Scenario::counting_sim`]
//! and [`Scenario::agreement_sim`] hand back the engine itself for
//! per-node inspection.
//!
//! ```
//! use bftbcast::prelude::*;
//!
//! // Theorem 2 end to end: a 15x15 torus, one bad node per
//! // neighborhood, budget 50 each.
//! let scenario = Scenario::builder(15, 15, 1)
//!     .faults(1, 50)
//!     .lattice_placement()
//!     .build()
//!     .unwrap();
//!
//! // Protocol B at m = 2*m0 survives the strongest adversary...
//! assert!(scenario.run_protocol_b(Adversary::PerReceiverOracle).is_reliable());
//! // ...while budgets below m0 stall (Theorem 1).
//! let starved = scenario.run_starved(scenario.params().m0() - 1, Adversary::PerReceiverOracle);
//! assert!(!starved.is_complete());
//!
//! // Illegal configurations never build:
//! let err = Scenario::builder(15, 15, 1)
//!     .faults(1, 50)
//!     .explicit_placement(vec![16, 17, 18]) // three adjacent bad nodes
//!     .build()
//!     .unwrap_err();
//! assert!(matches!(err, ScenarioError::LocalBoundViolated { .. }));
//! ```
//!
//! The declarative twin of this module is [`crate::scenario_file`]:
//! the same configurations written as `*.scn` files and run in batch.

use core::fmt;

use bftbcast_adversary::{
    respects_local_bound, BernoulliPlacement, Chaos, GreedyFrontier, LatticePlacement, Passive,
    Placement, RandomPlacement, StripePlacement,
};
use bftbcast_net::{Cross, Grid, NetError, NodeId};
use bftbcast_protocols::reactive::ReactiveConfig;
use bftbcast_protocols::{CountingProtocol, Params};
use bftbcast_sim::metrics::{CountingOutcome, ReactiveOutcome};
use bftbcast_sim::slot::{ReactiveAdversary, SlotConfig, SlotSim};
use bftbcast_sim::CountingSim;

/// Errors from scenario construction — programmatic ([`ScenarioBuilder`])
/// or declarative (`*.scn` files, see [`crate::scenario_file`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ScenarioError {
    /// Invalid torus dimensions / radio range.
    Net(NetError),
    /// The requested placement violates the local bound `t`.
    LocalBoundViolated {
        /// Worst neighborhood load produced by the placement.
        worst: usize,
        /// The configured bound.
        t: u32,
    },
    /// Scenario-file text failed to parse (see [`crate::scn`]).
    Parse {
        /// 1-based line number of the offending text.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// A scenario-file section or key outside the grammar — typically a
    /// typo; rejected rather than silently ignored.
    UnknownKey {
        /// Section name (`""` for the top level).
        section: String,
        /// The offending key (`""` when the section itself is unknown).
        key: String,
    },
    /// A semantically invalid scenario-file field, sweep axis, or
    /// combination.
    Invalid {
        /// What was being interpreted (`"sweep.m"`, `"placement.kind"`, …).
        what: String,
        /// Why it is invalid.
        message: String,
    },
}

impl fmt::Display for ScenarioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScenarioError::Net(e) => write!(f, "{e}"),
            ScenarioError::LocalBoundViolated { worst, t } => write!(
                f,
                "placement puts {worst} bad nodes in one neighborhood, exceeding t = {t}"
            ),
            ScenarioError::Parse { line, message } => {
                write!(f, "scenario parse error at line {line}: {message}")
            }
            ScenarioError::UnknownKey { section, key } if key.is_empty() => {
                write!(f, "unknown scenario section [{section}]")
            }
            ScenarioError::UnknownKey { section, key } if section.is_empty() => {
                write!(f, "unknown top-level scenario key {key:?}")
            }
            ScenarioError::UnknownKey { section, key } => {
                write!(f, "unknown key {key:?} in scenario section [{section}]")
            }
            ScenarioError::Invalid { what, message } => {
                write!(f, "invalid {what}: {message}")
            }
        }
    }
}

impl std::error::Error for ScenarioError {}

impl From<NetError> for ScenarioError {
    fn from(e: NetError) -> Self {
        ScenarioError::Net(e)
    }
}

impl From<crate::scn::ScnError> for ScenarioError {
    fn from(e: crate::scn::ScnError) -> Self {
        ScenarioError::Parse {
            line: e.line,
            message: e.message,
        }
    }
}

/// Adversary selection for counting-engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Adversary {
    /// No attacks.
    Passive,
    /// Physical global-budget adversary with the frontier-starving
    /// greedy strategy.
    Greedy,
    /// Physical global-budget adversary taking seeded random actions
    /// (fuzzing).
    Chaos(u64),
    /// The paper's per-receiver budget accounting (strictly stronger
    /// than any physical strategy; the model under which Theorems 1–3
    /// are proved). See `bftbcast_sim::counting` for the distinction.
    PerReceiverOracle,
}

enum PlacementChoice {
    None,
    Lattice { offset: u32 },
    Stripes(Vec<(u32, u32, bool)>),
    Random { count: usize, seed: u64 },
    Bernoulli { p: f64, seed: u64 },
    Explicit(Vec<NodeId>),
}

/// Builder for [`Scenario`].
pub struct ScenarioBuilder {
    width: u32,
    height: u32,
    r: u32,
    t: u32,
    mf: u64,
    source_xy: (u32, u32),
    placement: PlacementChoice,
}

impl ScenarioBuilder {
    /// Starts a builder for a `width × height` torus with radio range
    /// `r`. Defaults: `t = 1`, `mf = 1`, source at `(0, 0)`, no bad
    /// nodes.
    pub fn new(width: u32, height: u32, r: u32) -> Self {
        ScenarioBuilder {
            width,
            height,
            r,
            t: 1,
            mf: 1,
            source_xy: (0, 0),
            placement: PlacementChoice::None,
        }
    }

    /// Sets the fault assumption: at most `t` bad nodes per
    /// neighborhood, each with message budget `mf`.
    pub fn faults(mut self, t: u32, mf: u64) -> Self {
        self.t = t;
        self.mf = mf;
        self
    }

    /// Places the base station.
    pub fn source(mut self, x: u32, y: u32) -> Self {
        self.source_xy = (x, y);
        self
    }

    /// Figure 2's lattice placement: exactly `t` bad nodes in every
    /// neighborhood.
    pub fn lattice_placement(mut self) -> Self {
        self.placement = PlacementChoice::Lattice { offset: 1 };
        self
    }

    /// Lattice placement with an explicit residue-class offset — offset
    /// 41 at `r = 4` reproduces the exact per-node numbers of the
    /// paper's Figure 2 narrative (see EXP-F2).
    pub fn lattice_placement_with_offset(mut self, offset: u32) -> Self {
        self.placement = PlacementChoice::Lattice { offset };
        self
    }

    /// Theorem 1's stripe placement: each entry is `(y0, t,
    /// victims_above)` (see `StripePlacement`). On a torus a single
    /// stripe does not separate the network; pass two stripes of
    /// opposite orientation to isolate a band.
    pub fn stripe_placement(mut self, stripes: &[(u32, u32, bool)]) -> Self {
        self.placement = PlacementChoice::Stripes(stripes.to_vec());
        self
    }

    /// Random placement honoring the local bound.
    pub fn random_placement(mut self, count: usize, seed: u64) -> Self {
        self.placement = PlacementChoice::Random { count, seed };
        self
    }

    /// Probabilistic (iid) corruption at rate `p` — the model of the
    /// paper's stated future work (see
    /// `bftbcast_adversary::probabilistic`). Unlike
    /// [`ScenarioBuilder::random_placement`] this does **not** steer
    /// around the local bound: if the sampled placement overloads a
    /// neighborhood, [`ScenarioBuilder::build`] reports
    /// [`ScenarioError::LocalBoundViolated`] — which is the event the
    /// probabilistic analysis quantifies.
    pub fn bernoulli_placement(mut self, p: f64, seed: u64) -> Self {
        self.placement = PlacementChoice::Bernoulli { p, seed };
        self
    }

    /// An explicit list of bad nodes (validated against the local bound).
    pub fn explicit_placement(mut self, bad: Vec<NodeId>) -> Self {
        self.placement = PlacementChoice::Explicit(bad);
        self
    }

    /// Validates and builds the scenario.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Net`] for invalid grids,
    /// [`ScenarioError::LocalBoundViolated`] if the placement exceeds `t`.
    pub fn build(self) -> Result<Scenario, ScenarioError> {
        let grid = Grid::new(self.width, self.height, self.r)?;
        let params = Params::new(self.r, self.t, self.mf);
        let source = grid.id_at(self.source_xy.0, self.source_xy.1);
        let bad_nodes = match self.placement {
            PlacementChoice::None => Vec::new(),
            PlacementChoice::Lattice { offset } => {
                LatticePlacement { t: self.t, offset }.bad_nodes(&grid)
            }
            PlacementChoice::Stripes(stripes) => {
                let mut all = Vec::new();
                for (y0, t, victims_above) in stripes {
                    all.extend(
                        StripePlacement {
                            y0,
                            t,
                            victims_above,
                        }
                        .bad_nodes(&grid),
                    );
                }
                all.sort_unstable();
                all.dedup();
                all
            }
            PlacementChoice::Random { count, seed } => RandomPlacement {
                count,
                t: self.t,
                seed,
                source,
            }
            .bad_nodes(&grid),
            PlacementChoice::Bernoulli { p, seed } => {
                BernoulliPlacement { p, seed, source }.bad_nodes(&grid)
            }
            PlacementChoice::Explicit(bad) => bad,
        };
        let bad_nodes: Vec<NodeId> = bad_nodes.into_iter().filter(|&b| b != source).collect();
        let worst = bftbcast_adversary::max_bad_per_neighborhood(&grid, &bad_nodes);
        if worst > self.t as usize {
            return Err(ScenarioError::LocalBoundViolated { worst, t: self.t });
        }
        debug_assert!(respects_local_bound(&grid, &bad_nodes, self.t as usize));
        Ok(Scenario {
            grid,
            params,
            source,
            bad_nodes,
        })
    }
}

/// A network + fault assumption + bad-node placement, ready to run the
/// paper's protocols.
#[derive(Debug, Clone)]
pub struct Scenario {
    grid: Grid,
    params: Params,
    source: NodeId,
    bad_nodes: Vec<NodeId>,
}

impl Scenario {
    /// Starts a [`ScenarioBuilder`].
    pub fn builder(width: u32, height: u32, r: u32) -> ScenarioBuilder {
        ScenarioBuilder::new(width, height, r)
    }

    /// The torus.
    pub fn grid(&self) -> &Grid {
        &self.grid
    }

    /// The fault parameters.
    pub fn params(&self) -> Params {
        self.params
    }

    /// The base station.
    pub fn source(&self) -> NodeId {
        self.source
    }

    /// The corrupted nodes.
    pub fn bad_nodes(&self) -> &[NodeId] {
        &self.bad_nodes
    }

    fn run_counting(&self, protocol: CountingProtocol, adversary: Adversary) -> CountingOutcome {
        let mut sim = CountingSim::new(
            self.grid.clone(),
            protocol,
            self.source,
            &self.bad_nodes,
            self.params.mf,
        );
        match adversary {
            Adversary::Passive => sim.run(&mut Passive),
            Adversary::Greedy => sim.run(&mut GreedyFrontier::default()),
            Adversary::Chaos(seed) => sim.run(&mut Chaos::new(seed)),
            Adversary::PerReceiverOracle => sim.run_oracle(self.params.mf),
        }
    }

    /// Runs **protocol B** (Theorem 2: homogeneous `m = 2·m0`).
    pub fn run_protocol_b(&self, adversary: Adversary) -> CountingOutcome {
        self.run_counting(
            CountingProtocol::protocol_b(&self.grid, self.params),
            adversary,
        )
    }

    /// Runs the budget-starved variant (`m` per node, all relayed) —
    /// the Theorem 1 / Figure 2 impossibility regime.
    pub fn run_starved(&self, m: u64, adversary: Adversary) -> CountingOutcome {
        self.run_counting(
            CountingProtocol::starved(&self.grid, self.params, m),
            adversary,
        )
    }

    /// Runs **Bheter** (Theorem 3) with the given cross-shaped
    /// high-budget region.
    pub fn run_heterogeneous(&self, cross: &Cross, adversary: Adversary) -> CountingOutcome {
        self.run_counting(
            CountingProtocol::heterogeneous(&self.grid, self.params, cross),
            adversary,
        )
    }

    /// Runs the Koo et al. (PODC'06) baseline (`m = 2·t·mf + 1` per
    /// node).
    pub fn run_koo_baseline(&self, adversary: Adversary) -> CountingOutcome {
        self.run_counting(
            CountingProtocol::koo_baseline(&self.grid, self.params),
            adversary,
        )
    }

    /// Runs the scenario under **majority acceptance** instead of the
    /// paper's threshold rule (the EXP-A3 ablation): every node has a
    /// send quota of `quorum` copies and accepts the leading value once
    /// `quorum` total copies arrive. Safe only for
    /// `quorum ≥ 2·t·mf + 1`; at the threshold rule's intake
    /// (`t·mf + 1`) the oracle forges acceptances.
    ///
    /// ```
    /// use bftbcast::prelude::*;
    /// let s = Scenario::builder(15, 15, 1)
    ///     .faults(1, 4)
    ///     .lattice_placement()
    ///     .build()
    ///     .unwrap();
    /// assert!(s.run_majority(9).is_reliable());       // 2*t*mf + 1
    /// assert!(!s.run_majority(5).is_correct());       // t*mf + 1: forged
    /// ```
    pub fn run_majority(&self, quorum: u64) -> CountingOutcome {
        let proto = CountingProtocol::starved(&self.grid, self.params, quorum);
        let mut sim = self.counting_sim(proto);
        sim.run_majority_oracle(self.params.mf, quorum)
    }

    /// Runs the scenario as a **hybrid fault load**: this scenario's
    /// bad nodes stay Byzantine (per-receiver oracle), and `crash`
    /// additionally marks crash-stop nodes with the given stop
    /// schedule, under protocol B budgets.
    ///
    /// # Panics
    ///
    /// Panics if `crash` overlaps the Byzantine set or the source.
    pub fn run_with_crashes(
        &self,
        crash: &[NodeId],
        behavior: bftbcast_sim::crash::CrashBehavior,
    ) -> CountingOutcome {
        let proto = CountingProtocol::protocol_b(&self.grid, self.params);
        let mut sim = bftbcast_sim::crash::HybridSim::new(self.grid.clone(), proto, self.source)
            .with_byzantine_nodes(&self.bad_nodes)
            .with_crash_nodes(crash, behavior);
        sim.run(self.params.mf)
    }

    /// Builds a source-neighborhood agreement engine for this
    /// scenario's source, using the scenario's bad nodes that fall
    /// inside `N(source)` as the colluders (bad nodes elsewhere cannot
    /// touch the agreement phase).
    pub fn agreement_sim(&self) -> bftbcast_sim::agreement::AgreementSim {
        let cfg = bftbcast_protocols::agreement::AgreementConfig::paper_margins(self.params);
        let colluders: Vec<NodeId> = self
            .bad_nodes
            .iter()
            .copied()
            .filter(|&b| self.grid.are_neighbors(self.source, b))
            .take(self.params.t as usize)
            .collect();
        bftbcast_sim::agreement::AgreementSim::new(self.grid.clone(), cfg, self.source, &colluders)
    }

    /// Runs **Breactive** (Theorem 4) on the slot engine: coded frames,
    /// NACK-driven local broadcast, certified propagation. `mmax` is the
    /// loose budget bound known to good nodes; `k` the payload width in
    /// bits; the real budget is the scenario's `mf`.
    pub fn run_reactive(
        &self,
        k: usize,
        mmax: u64,
        adversary: ReactiveAdversary,
        seed: u64,
    ) -> ReactiveOutcome {
        self.run_reactive_with_budget(k, mmax, adversary, seed, None)
    }

    /// [`Scenario::run_reactive`] with a hard per-good-node message cap
    /// (data + NACK frames): exhausted nodes fall silent. Pass
    /// Theorem 4's `2(t·mf+1)` message count to check the bound is
    /// *sufficient*, or less to inject under-provisioning failures.
    pub fn run_reactive_with_budget(
        &self,
        k: usize,
        mmax: u64,
        adversary: ReactiveAdversary,
        seed: u64,
        good_budget: Option<u64>,
    ) -> ReactiveOutcome {
        let config = SlotConfig {
            reactive: ReactiveConfig::paper(
                self.grid.node_count(),
                self.grid.range(),
                self.params.t,
                mmax,
                k,
            ),
            t: self.params.t,
            mf: self.params.mf,
            good_budget,
            adversary,
            max_rounds: 2_000_000,
            seed,
        };
        let mut sim = SlotSim::new(self.grid.clone(), self.source, &self.bad_nodes, config);
        sim.run()
    }

    /// Builds a counting engine for manual inspection (the Figure 2
    /// trace workflow): run it, then query per-node tallies.
    pub fn counting_sim(&self, protocol: CountingProtocol) -> CountingSim {
        CountingSim::new(
            self.grid.clone(),
            protocol,
            self.source,
            &self.bad_nodes,
            self.params.mf,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates_local_bound() {
        // Three adjacent explicit bad nodes violate t = 1.
        let err = Scenario::builder(15, 15, 1)
            .faults(1, 5)
            .explicit_placement(vec![16, 17, 18])
            .build()
            .unwrap_err();
        assert!(matches!(
            err,
            ScenarioError::LocalBoundViolated { worst: 2.., t: 1 }
        ));
    }

    #[test]
    fn builder_rejects_bad_grid() {
        assert!(matches!(
            Scenario::builder(2, 2, 1).build(),
            Err(ScenarioError::Net(_))
        ));
    }

    #[test]
    fn source_is_filtered_from_placements() {
        let s = Scenario::builder(15, 15, 1)
            .faults(1, 5)
            .explicit_placement(vec![0, 20])
            .build()
            .unwrap();
        assert_eq!(s.bad_nodes(), &[20]);
    }

    #[test]
    fn end_to_end_protocol_b() {
        let s = Scenario::builder(15, 15, 1)
            .faults(1, 10)
            .lattice_placement()
            .build()
            .unwrap();
        for adv in [
            Adversary::Passive,
            Adversary::Greedy,
            Adversary::Chaos(3),
            Adversary::PerReceiverOracle,
        ] {
            let out = s.run_protocol_b(adv);
            assert!(out.is_reliable(), "{adv:?}: {}", out.coverage());
        }
    }

    #[test]
    fn end_to_end_reactive() {
        let s = Scenario::builder(15, 15, 1)
            .faults(1, 4)
            .random_placement(8, 9)
            .build()
            .unwrap();
        let out = s.run_reactive(8, 1 << 16, ReactiveAdversary::Jammer, 42);
        assert!(out.is_reliable(), "uncommitted: {:?}", out.uncommitted);
    }

    #[test]
    fn stripes_compose() {
        let s = Scenario::builder(15, 15, 1)
            .faults(1, 100)
            .stripe_placement(&[(4, 1, true), (11, 1, false)])
            .build()
            .unwrap();
        assert_eq!(s.bad_nodes().len(), 10);
    }

    #[test]
    fn hybrid_run_through_the_scenario_api() {
        use bftbcast_sim::crash::CrashBehavior;
        let s = Scenario::builder(20, 20, 2)
            .faults(1, 10)
            .lattice_placement()
            .build()
            .unwrap();
        let crash: Vec<NodeId> = (1..6)
            .map(|x| s.grid().id_at(x, 9))
            .filter(|u| !s.bad_nodes().contains(u))
            .collect();
        let out = s.run_with_crashes(&crash, CrashBehavior::Immediate);
        assert!(out.is_correct());
        assert!(out.is_complete(), "coverage {}", out.coverage());
    }

    #[test]
    fn agreement_through_the_scenario_api() {
        use bftbcast_sim::agreement::{SourceBehavior, SplitAttack};
        let s = Scenario::builder(15, 15, 2)
            .faults(1, 10)
            .source(7, 7)
            .explicit_placement(vec![Grid::new(15, 15, 2).unwrap().id_at(7, 8)])
            .build()
            .unwrap();
        let mut sim = s.agreement_sim();
        let out = sim.run(SourceBehavior::Correct, SplitAttack::strongest());
        assert!(out.validity_holds());
        assert!(out.agreement_holds());
    }

    #[test]
    fn bernoulli_placement_validates_the_bound() {
        // Low rate: builds; absurd rate: LocalBoundViolated.
        let ok = Scenario::builder(20, 20, 2)
            .faults(4, 5)
            .bernoulli_placement(0.005, 7)
            .build();
        assert!(ok.is_ok());
        let err = Scenario::builder(20, 20, 2)
            .faults(1, 5)
            .bernoulli_placement(0.5, 7)
            .build();
        assert!(matches!(err, Err(ScenarioError::LocalBoundViolated { .. })));
    }

    #[test]
    fn majority_run_through_the_scenario_api() {
        let s = Scenario::builder(15, 15, 1)
            .faults(1, 4)
            .lattice_placement()
            .build()
            .unwrap();
        let safe = s.run_majority(9);
        assert!(safe.is_reliable());
        let unsafe_run = s.run_majority(5);
        assert!(unsafe_run.wrong_accepts > 0);
    }
}
