//! Typed scenario files: the declarative layer over [`crate::scn`].
//!
//! A `*.scn` file describes one workload — topology, fault assumption,
//! bad-node placement, engine, protocol, adversary — plus optional
//! **sweep axes** that expand the file into a grid of runs and
//! **probes** that report per-node tallies (the Figure 2 trace
//! workflow). [`ScenarioFile::parse`] validates the whole document
//! eagerly — unknown sections/keys, inapplicable combinations, and bad
//! sweep ranges are all rejected with a [`ScenarioError`] before
//! anything runs — and [`ScenarioFile::points`] expands the sweep into
//! fully-resolved [`PointSpec`]s for the batch runner
//! ([`crate::batch`]).
//!
//! # Grammar
//!
//! Sections and keys (all optional unless noted; see
//! `docs/ARCHITECTURE.md` for the commented walk-through):
//!
//! | section | keys | notes |
//! |---------|------|-------|
//! | top level | `name`, `engine`, `seed` | engine: `counting` (default) \| `crash` \| `slot` \| `agreement` \| `rbc` |
//! | `[topology]` | `side` or `width`+`height`, `r` (required) | the torus |
//! | `[faults]` | `t`, `mf` | local bound and per-node budget |
//! | `[source]` | `x`, `y` | base-station cell |
//! | `[placement]` | `kind` + kind-specific keys | Byzantine placement |
//! | `[protocol]` | `kind`, `m`, `quorum` | counting/crash engines |
//! | `[adversary]` | `kind` | counting engine only |
//! | `[crash]` | `kind`, `y0`, `height`, `nodes`, `behavior`, `after` | crash engine only |
//! | `[reactive]` | `k`, `mmax`, `adversary`, `budget`, `max_rounds` | slot engine only |
//! | `[agreement]` | `mode`, `source`, `p1`, `pe` | agreement engine only |
//! | `[rbc]` | `protocol`, `payload`, `max_waves`, `schedule`, `behavior` | rbc engine only |
//! | `[probes]` | `nodes = [[x, y], ...]` | any engine (see [`bftbcast_sim::engine::Probe`]) |
//! | `[sweep]` | one key per axis | values: array, or `"a..b"` / `"a..=b"` range string; the `protocol` axis takes name strings |
//!
//! Sweep axes override the base document per point; the cartesian
//! product is taken in file order (later axes vary fastest).

use bftbcast_rbc::{ByzantineBehavior, RbcProtocol, ScheduleKind};
use bftbcast_sim::crash::CrashBehavior;
use bftbcast_sim::engine::AgreementMode;
use bftbcast_sim::slot::ReactiveAdversary;

use crate::scenario::{Scenario, ScenarioError};
use crate::scn::{self, ScnSection, ScnValue};

/// Which engine a scenario file drives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineKind {
    /// The worst-case counting engine (Theorems 1–3, Figure 2).
    Counting,
    /// The hybrid crash + Byzantine engine.
    Crash,
    /// The slot-level `Breactive` engine (Section 5).
    Slot,
    /// Source-neighborhood agreement (faulty base station).
    Agreement,
    /// Message-level reliable broadcast (flood/Bracha/CTRBC).
    Rbc,
}

impl EngineKind {
    /// The grammar's name for this engine.
    pub fn name(self) -> &'static str {
        match self {
            EngineKind::Counting => "counting",
            EngineKind::Crash => "crash",
            EngineKind::Slot => "slot",
            EngineKind::Agreement => "agreement",
            EngineKind::Rbc => "rbc",
        }
    }

    /// The inverse of [`EngineKind::name`] — shared by the `.scn` and
    /// JSON codecs so both grammars accept exactly the same names.
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "counting" => EngineKind::Counting,
            "crash" => EngineKind::Crash,
            "slot" => EngineKind::Slot,
            "agreement" => EngineKind::Agreement,
            "rbc" => EngineKind::Rbc,
            _ => return None,
        })
    }
}

/// Byzantine placement, declaratively.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementSpec {
    /// No bad nodes.
    None,
    /// Figure 2's lattice: exactly `t` bad nodes per neighborhood.
    Lattice {
        /// Residue-class offset (41 reproduces Figure 2's positions).
        offset: u32,
    },
    /// Theorem 1's stripes: `(y0, t, victims_above)` per stripe.
    Stripes(Vec<(u32, u32, bool)>),
    /// Random placement honoring the local bound (uses the run seed).
    Random {
        /// How many bad nodes to place.
        count: usize,
    },
    /// Probabilistic iid corruption (may violate the local bound — the
    /// event the analysis quantifies; uses the run seed).
    Bernoulli {
        /// Per-node corruption rate.
        p: f64,
    },
    /// An explicit list of `(x, y)` cells.
    Explicit(Vec<(u32, u32)>),
}

/// Protocol under test (counting-family engines).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtocolSpec {
    /// Protocol B (Theorem 2, `m = 2·m0`).
    B,
    /// The Koo PODC'06 baseline (`m = 2·t·mf + 1`).
    Koo,
    /// Bheter (Theorem 3) with the paper-scale cross at the origin.
    Heter,
    /// Budget-starved variant: `m` copies per node, all relayed.
    Starved {
        /// Per-node copy budget.
        m: u64,
    },
    /// Majority acceptance at this quorum (the EXP-A3 ablation; oracle
    /// adversary only).
    Majority {
        /// Total copies needed to decide.
        quorum: u64,
    },
    /// The crash-only protocol (budget 1, threshold 1; crash engine
    /// only).
    CrashOnly,
}

/// Adversary model (counting engine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AdversarySpec {
    /// The paper's per-receiver budget accounting.
    Oracle,
    /// Physical global budgets, frontier-starving greedy.
    Greedy,
    /// Physical global budgets, seeded random actions.
    Chaos,
    /// No attacks.
    Passive,
}

impl AdversarySpec {
    /// The grammar's name for this adversary (also the cache-key
    /// spelling in [`crate::cache::point_key`]).
    pub fn name(self) -> &'static str {
        match self {
            AdversarySpec::Oracle => "oracle",
            AdversarySpec::Greedy => "greedy",
            AdversarySpec::Chaos => "chaos",
            AdversarySpec::Passive => "passive",
        }
    }

    /// The inverse of [`AdversarySpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "oracle" => AdversarySpec::Oracle,
            "greedy" => AdversarySpec::Greedy,
            "chaos" => AdversarySpec::Chaos,
            "passive" => AdversarySpec::Passive,
            _ => return None,
        })
    }
}

/// Crash-node selection (crash engine).
#[derive(Debug, Clone, PartialEq)]
pub enum CrashNodesSpec {
    /// All nodes in rows `y0 .. y0 + height` (wrapping).
    Stripe {
        /// First row.
        y0: u32,
        /// Stripe height.
        height: u32,
    },
    /// An explicit list of `(x, y)` cells.
    Explicit(Vec<(u32, u32)>),
}

/// Crash-fault load (crash engine).
#[derive(Debug, Clone, PartialEq)]
pub struct CrashSpec {
    /// Which nodes crash.
    pub nodes: CrashNodesSpec,
    /// When they stop relaying.
    pub behavior: CrashBehavior,
}

/// Slot-engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReactiveSpec {
    /// Payload width in bits.
    pub k: usize,
    /// Loose budget bound known to good nodes.
    pub mmax: u64,
    /// Adversary behavior.
    pub adversary: ReactiveAdversary,
    /// Optional hard cap on good-node messages.
    pub budget: Option<u64>,
    /// Hard cap on message rounds.
    pub max_rounds: u64,
}

impl Default for ReactiveSpec {
    fn default() -> Self {
        ReactiveSpec {
            k: 8,
            mmax: 1 << 16,
            adversary: ReactiveAdversary::Jammer,
            budget: None,
            max_rounds: 2_000_000,
        }
    }
}

/// Message-level RBC engine configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RbcSpec {
    /// Protocol family to run (flood baseline, Bracha, or CTRBC).
    pub protocol: RbcProtocol,
    /// Broadcast payload size in bits.
    pub payload: u32,
    /// Hard cap on delivery waves.
    pub max_waves: u64,
    /// Delivery schedule the network plays (seeded, fifo,
    /// delay_quorum, targeted_reorder, gst).
    pub schedule: ScheduleKind,
    /// What Byzantine nodes actively do (mute, equivocate,
    /// selective_send, stale_replay).
    pub behavior: ByzantineBehavior,
}

impl Default for RbcSpec {
    fn default() -> Self {
        RbcSpec {
            protocol: RbcProtocol::Bracha,
            payload: 64,
            max_waves: 100_000,
            schedule: ScheduleKind::Seeded,
            behavior: ByzantineBehavior::Mute,
        }
    }
}

/// Source behavior in the agreement engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SourceSpec {
    /// A correct source.
    Correct,
    /// A Byzantine source splitting evenly between two values.
    Split,
    /// A Byzantine source that stays silent.
    Silent,
}

impl SourceSpec {
    /// The grammar's name for this source behavior.
    pub fn name(self) -> &'static str {
        match self {
            SourceSpec::Correct => "correct",
            SourceSpec::Split => "split",
            SourceSpec::Silent => "silent",
        }
    }

    /// The inverse of [`SourceSpec::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        Some(match name {
            "correct" => SourceSpec::Correct,
            "split" => SourceSpec::Split,
            "silent" => SourceSpec::Silent,
            _ => return None,
        })
    }
}

/// Agreement-engine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct AgreementSpec {
    /// Cheap three-phase or proven vector mode.
    pub mode: AgreementMode,
    /// Source behavior.
    pub source: SourceSpec,
    /// Colluders' propose-phase capacity fraction.
    pub p1: f64,
    /// Colluders' echo-phase capacity fraction (of the remainder).
    pub pe: f64,
}

impl Default for AgreementSpec {
    fn default() -> Self {
        // SplitAttack::strongest()'s schedule.
        AgreementSpec {
            mode: AgreementMode::Cheap,
            source: SourceSpec::Correct,
            p1: 0.4,
            pe: 0.2,
        }
    }
}

/// One fully-resolved run: the base document with one sweep-point's
/// overrides applied.
#[derive(Debug, Clone, PartialEq)]
pub struct PointSpec {
    /// Torus width.
    pub width: u32,
    /// Torus height.
    pub height: u32,
    /// Radio range.
    pub r: u32,
    /// Local bound `t`.
    pub t: u32,
    /// Per-bad-node budget `mf`.
    pub mf: u64,
    /// Base-station cell.
    pub source: (u32, u32),
    /// Run seed (chaos adversary, random/Bernoulli placement, slot
    /// RNG).
    pub seed: u64,
    /// Byzantine placement.
    pub placement: PlacementSpec,
    /// Protocol under test.
    pub protocol: ProtocolSpec,
    /// Counting-engine adversary.
    pub adversary: AdversarySpec,
    /// Crash-fault load (crash engine).
    pub crash: Option<CrashSpec>,
    /// Slot-engine configuration.
    pub reactive: ReactiveSpec,
    /// Agreement-engine configuration.
    pub agreement: AgreementSpec,
    /// Message-level RBC engine configuration.
    pub rbc: RbcSpec,
    /// `(axis, rendered value)` for this sweep point, in axis order.
    pub label: Vec<(String, String)>,
}

impl PointSpec {
    /// Builds the [`Scenario`] (torus + faults + Byzantine placement)
    /// for this point.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Net`] / [`ScenarioError::LocalBoundViolated`]
    /// exactly as [`crate::ScenarioBuilder::build`].
    pub fn build_scenario(&self) -> Result<Scenario, ScenarioError> {
        let mut b = Scenario::builder(self.width, self.height, self.r)
            .faults(self.t, self.mf)
            .source(self.source.0, self.source.1);
        b = match &self.placement {
            PlacementSpec::None => b,
            PlacementSpec::Lattice { offset } => b.lattice_placement_with_offset(*offset),
            PlacementSpec::Stripes(stripes) => b.stripe_placement(stripes),
            PlacementSpec::Random { count } => b.random_placement(*count, self.seed),
            PlacementSpec::Bernoulli { p } => b.bernoulli_placement(*p, self.seed),
            PlacementSpec::Explicit(cells) => {
                let grid = bftbcast_net::Grid::new(self.width, self.height, self.r)?;
                let ids = cells.iter().map(|&(x, y)| grid.id_at(x, y)).collect();
                b.explicit_placement(ids)
            }
        };
        b.build()
    }
}

/// A sweep-axis value: integer, float, or a canonical name (the rbc
/// `protocol` axis).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AxisValue {
    /// An integer point.
    Int(i64),
    /// A float point (fraction axes only).
    Float(f64),
    /// A named point, interned to the grammar's canonical spelling
    /// (name axes only).
    Name(&'static str),
}

impl AxisValue {
    fn render(self) -> String {
        match self {
            AxisValue::Int(i) => i.to_string(),
            AxisValue::Float(f) => format!("{f}"),
            AxisValue::Name(s) => s.to_string(),
        }
    }

    fn as_u64(self, what: &str) -> Result<u64, ScenarioError> {
        match self {
            AxisValue::Int(i) if i >= 0 => Ok(i as u64),
            _ => Err(invalid(what, "expected a non-negative integer")),
        }
    }

    fn as_f64(self, what: &str) -> Result<f64, ScenarioError> {
        match self {
            AxisValue::Int(i) => Ok(i as f64),
            AxisValue::Float(f) => Ok(f),
            AxisValue::Name(_) => Err(invalid(what, "expected a number")),
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct Axis {
    name: String,
    values: Vec<AxisValue>,
}

/// A parsed, validated scenario file.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioFile {
    /// Scenario name (reported in every output row).
    pub name: String,
    /// Which engine the file drives.
    pub engine: EngineKind,
    /// Probe cells `(x, y)` reported per point (counting/crash).
    pub probes: Vec<(u32, u32)>,
    base: PointSpec,
    sweep: Vec<Axis>,
}

fn invalid(what: &str, message: impl Into<String>) -> ScenarioError {
    ScenarioError::Invalid {
        what: what.to_string(),
        message: message.into(),
    }
}

fn check_keys(section: &ScnSection, allowed: &[&str]) -> Result<(), ScenarioError> {
    for (key, _, _) in &section.entries {
        if !allowed.contains(&key.as_str()) {
            return Err(ScenarioError::UnknownKey {
                section: section.name.clone(),
                key: key.clone(),
            });
        }
    }
    Ok(())
}

fn get_str<'a>(section: &'a ScnSection, key: &str) -> Result<Option<&'a str>, ScenarioError> {
    match section.get(key) {
        None => Ok(None),
        Some(ScnValue::Str(s)) => Ok(Some(s)),
        Some(other) => Err(invalid(
            &format!("{}.{key}", section_name(section)),
            format!("expected a string, found {}", other.kind()),
        )),
    }
}

fn get_int(section: &ScnSection, key: &str) -> Result<Option<i64>, ScenarioError> {
    match section.get(key) {
        None => Ok(None),
        Some(ScnValue::Int(i)) => Ok(Some(*i)),
        Some(ScnValue::BigInt(n)) => Err(invalid(
            &format!("{}.{key}", section_name(section)),
            format!("integer {n} is out of range for this field"),
        )),
        Some(other) => Err(invalid(
            &format!("{}.{key}", section_name(section)),
            format!("expected an integer, found {}", other.kind()),
        )),
    }
}

fn get_f64(section: &ScnSection, key: &str) -> Result<Option<f64>, ScenarioError> {
    match section.get(key) {
        None => Ok(None),
        Some(ScnValue::Float(f)) => Ok(Some(*f)),
        Some(ScnValue::Int(i)) => Ok(Some(*i as f64)),
        Some(other) => Err(invalid(
            &format!("{}.{key}", section_name(section)),
            format!("expected a number, found {}", other.kind()),
        )),
    }
}

fn get_u32(section: &ScnSection, key: &str) -> Result<Option<u32>, ScenarioError> {
    match get_int(section, key)? {
        None => Ok(None),
        Some(i) => u32::try_from(i).map(Some).map_err(|_| {
            invalid(
                &format!("{}.{key}", section_name(section)),
                "expected a non-negative 32-bit integer",
            )
        }),
    }
}

fn get_u64(section: &ScnSection, key: &str) -> Result<Option<u64>, ScenarioError> {
    // Full-range u64 fields: i64-range literals and BigInt literals
    // (above i64::MAX) are both valid.
    if let Some(ScnValue::BigInt(n)) = section.get(key) {
        return Ok(Some(*n));
    }
    match get_int(section, key)? {
        None => Ok(None),
        Some(i) => u64::try_from(i).map(Some).map_err(|_| {
            invalid(
                &format!("{}.{key}", section_name(section)),
                "expected a non-negative integer",
            )
        }),
    }
}

fn section_name(section: &ScnSection) -> &str {
    if section.name.is_empty() {
        "top level"
    } else {
        &section.name
    }
}

/// Parses `[[x, y], ...]` coordinate lists.
fn get_cells(section: &ScnSection, key: &str) -> Result<Vec<(u32, u32)>, ScenarioError> {
    let what = format!("{}.{key}", section_name(section));
    let Some(value) = section.get(key) else {
        return Err(invalid(&what, "missing coordinate list"));
    };
    let ScnValue::Array(items) = value else {
        return Err(invalid(&what, "expected an array of [x, y] pairs"));
    };
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let ScnValue::Array(pair) = item else {
            return Err(invalid(&what, "each entry must be an [x, y] pair"));
        };
        let [ScnValue::Int(x), ScnValue::Int(y)] = pair.as_slice() else {
            return Err(invalid(&what, "each entry must be two integers"));
        };
        let (Ok(x), Ok(y)) = (u32::try_from(*x), u32::try_from(*y)) else {
            return Err(invalid(&what, "coordinates must be non-negative"));
        };
        out.push((x, y));
    }
    Ok(out)
}

/// Parses a sweep axis value list: an array of numbers or a range
/// string `"a..b"` (half-open) / `"a..=b"` (inclusive).
fn axis_values(name: &str, value: &ScnValue) -> Result<Vec<AxisValue>, ScenarioError> {
    let what = format!("sweep.{name}");
    let values = match value {
        ScnValue::Array(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(match item {
                    ScnValue::Int(i) => AxisValue::Int(*i),
                    ScnValue::Float(f) => AxisValue::Float(*f),
                    // The protocol/schedule/behavior axes hold names,
                    // not numbers; intern each to its canonical
                    // spelling here so AxisValue stays Copy.
                    ScnValue::Str(s) if name == "protocol" => {
                        let p = RbcProtocol::from_name(s).ok_or_else(|| {
                            invalid(
                                &what,
                                format!("unknown protocol {s:?} (counting|bracha|ctrbc)"),
                            )
                        })?;
                        AxisValue::Name(p.name())
                    }
                    ScnValue::Str(s) if name == "schedule" => {
                        let k = ScheduleKind::from_name(s).ok_or_else(|| {
                            invalid(
                                &what,
                                format!(
                                    "unknown schedule {s:?} \
                                     (seeded|fifo|delay_quorum|targeted_reorder|gst)"
                                ),
                            )
                        })?;
                        AxisValue::Name(k.name())
                    }
                    ScnValue::Str(s) if name == "behavior" => {
                        let b = ByzantineBehavior::from_name(s).ok_or_else(|| {
                            invalid(
                                &what,
                                format!(
                                    "unknown behavior {s:?} \
                                     (mute|equivocate|selective_send|stale_replay)"
                                ),
                            )
                        })?;
                        AxisValue::Name(b.name())
                    }
                    ScnValue::BigInt(n) => {
                        return Err(invalid(
                            &what,
                            format!("axis value {n} is above the sweepable range (i64)"),
                        ))
                    }
                    other => {
                        return Err(invalid(
                            &what,
                            format!("axis arrays hold numbers, found {}", other.kind()),
                        ))
                    }
                });
            }
            out
        }
        ScnValue::Str(range) => {
            let (lo, hi, inclusive) = if let Some((lo, hi)) = range.split_once("..=") {
                (lo, hi, true)
            } else if let Some((lo, hi)) = range.split_once("..") {
                (lo, hi, false)
            } else {
                return Err(invalid(
                    &what,
                    format!("range {range:?} must look like \"a..b\" or \"a..=b\""),
                ));
            };
            let parse = |s: &str| -> Result<i64, ScenarioError> {
                s.trim()
                    .parse()
                    .map_err(|_| invalid(&what, format!("range bound {s:?} is not an integer")))
            };
            let lo = parse(lo)?;
            let hi = parse(hi)?;
            let hi = if inclusive { hi + 1 } else { hi };
            if lo >= hi {
                return Err(invalid(&what, format!("range {range:?} is empty")));
            }
            (lo..hi).map(AxisValue::Int).collect()
        }
        other => {
            return Err(invalid(
                &what,
                format!(
                    "expected an array of numbers or a range string, found {}",
                    other.kind()
                ),
            ))
        }
    };
    if values.is_empty() {
        return Err(invalid(&what, "axis has no values"));
    }
    Ok(values)
}

/// Applies one axis override to a [`PointSpec`] — the shared vocabulary
/// of `[sweep]` axes and `run --set key=value` overrides.
pub(crate) fn apply_axis(
    spec: &mut PointSpec,
    name: &str,
    value: AxisValue,
) -> Result<(), ScenarioError> {
    let what = format!("sweep.{name}");
    match name {
        "m" => match &mut spec.protocol {
            ProtocolSpec::Starved { m } => *m = value.as_u64(&what)?,
            _ => {
                return Err(invalid(
                    &what,
                    "sweeping m requires protocol kind = \"starved\"",
                ))
            }
        },
        "quorum" => match &mut spec.protocol {
            ProtocolSpec::Majority { quorum } => *quorum = value.as_u64(&what)?,
            _ => {
                return Err(invalid(
                    &what,
                    "sweeping quorum requires protocol kind = \"majority\"",
                ))
            }
        },
        "t" => {
            spec.t = u32::try_from(value.as_u64(&what)?)
                .map_err(|_| invalid(&what, "t out of range"))?;
        }
        "mf" => spec.mf = value.as_u64(&what)?,
        "seed" => spec.seed = value.as_u64(&what)?,
        "count" => match &mut spec.placement {
            PlacementSpec::Random { count } => *count = value.as_u64(&what)? as usize,
            _ => {
                return Err(invalid(
                    &what,
                    "sweeping count requires placement kind = \"random\"",
                ))
            }
        },
        "p" => match &mut spec.placement {
            PlacementSpec::Bernoulli { p } => *p = value.as_f64(&what)?,
            _ => {
                return Err(invalid(
                    &what,
                    "sweeping p requires placement kind = \"bernoulli\"",
                ))
            }
        },
        "k" => spec.reactive.k = value.as_u64(&what)? as usize,
        "mmax" => spec.reactive.mmax = value.as_u64(&what)?,
        "p1" => spec.agreement.p1 = value.as_f64(&what)?,
        "pe" => spec.agreement.pe = value.as_f64(&what)?,
        "protocol" => match value {
            AxisValue::Name(s) => {
                spec.rbc.protocol = RbcProtocol::from_name(s).ok_or_else(|| {
                    invalid(
                        &what,
                        format!("unknown protocol {s:?} (counting|bracha|ctrbc)"),
                    )
                })?;
            }
            _ => {
                return Err(invalid(
                    &what,
                    "protocol axis values are names: [\"counting\", \"bracha\", \"ctrbc\"]",
                ))
            }
        },
        "payload" => {
            spec.rbc.payload = u32::try_from(value.as_u64(&what)?)
                .map_err(|_| invalid(&what, "payload out of range"))?;
        }
        "schedule" => match value {
            AxisValue::Name(s) => {
                spec.rbc.schedule = ScheduleKind::from_name(s).ok_or_else(|| {
                    invalid(
                        &what,
                        format!(
                            "unknown schedule {s:?} \
                             (seeded|fifo|delay_quorum|targeted_reorder|gst)"
                        ),
                    )
                })?;
            }
            _ => {
                return Err(invalid(
                    &what,
                    "schedule axis values are names: [\"seeded\", \"fifo\", \
                     \"delay_quorum\", \"targeted_reorder\", \"gst\"]",
                ))
            }
        },
        "behavior" => match value {
            AxisValue::Name(s) => {
                spec.rbc.behavior = ByzantineBehavior::from_name(s).ok_or_else(|| {
                    invalid(
                        &what,
                        format!(
                            "unknown behavior {s:?} \
                             (mute|equivocate|selective_send|stale_replay)"
                        ),
                    )
                })?;
            }
            _ => {
                return Err(invalid(
                    &what,
                    "behavior axis values are names: [\"mute\", \"equivocate\", \
                     \"selective_send\", \"stale_replay\"]",
                ))
            }
        },
        other => {
            return Err(invalid(
                &format!("sweep.{other}"),
                "unknown axis (known: m, quorum, t, mf, seed, count, p, k, mmax, p1, pe, \
                 protocol, payload, schedule, behavior)",
            ))
        }
    }
    if matches!(name, "p" | "p1" | "pe") {
        let v = value.as_f64(&what)?;
        if !(0.0..=1.0).contains(&v) {
            return Err(invalid(&what, "fractions must lie in [0, 1]"));
        }
    }
    Ok(())
}

/// The one authoritative off-torus check for probe cells, shared by
/// the `.scn` parser, the spec validator ([`crate::spec`]), and the
/// batch runner's pre-run backstop — so the error text (naming the
/// cell and the torus) can never diverge between layers.
pub(crate) fn check_probe_cell(
    x: u32,
    y: u32,
    width: u32,
    height: u32,
) -> Result<(), ScenarioError> {
    if x >= width || y >= height {
        return Err(invalid(
            "probes.nodes",
            format!("probe ({x}, {y}) is off the {width}x{height} torus"),
        ));
    }
    Ok(())
}

/// Cross-field validation of a fully-resolved point: everything that
/// would otherwise surface as an engine assert at run time — on a
/// `sweep()` worker thread, aborting the batch — fails here with a
/// [`ScenarioError`] instead. Called on the base document and on every
/// sweep-axis value at parse time.
pub(crate) fn validate_point(spec: &PointSpec, engine: EngineKind) -> Result<(), ScenarioError> {
    let (w, h) = (spec.width, spec.height);
    let check_cell = |what: &str, x: u32, y: u32| -> Result<(), ScenarioError> {
        if x >= w || y >= h {
            return Err(invalid(
                what,
                format!("cell ({x}, {y}) is off the {w}x{h} torus"),
            ));
        }
        Ok(())
    };
    check_cell("source", spec.source.0, spec.source.1)?;
    if let PlacementSpec::Explicit(cells) = &spec.placement {
        for &(x, y) in cells {
            check_cell("placement.nodes", x, y)?;
        }
    }
    if let PlacementSpec::Bernoulli { p } = spec.placement {
        if !(0.0..=1.0).contains(&p) {
            return Err(invalid("placement.p", "rate must lie in [0, 1]"));
        }
    }
    if let Some(crash) = &spec.crash {
        if let CrashNodesSpec::Explicit(cells) = &crash.nodes {
            for &(x, y) in cells {
                check_cell("crash.nodes", x, y)?;
            }
        }
    }
    if engine == EngineKind::Slot && !(1..=63).contains(&spec.reactive.k) {
        return Err(invalid(
            "reactive.k",
            "payload width must lie in 1..=63 bits",
        ));
    }
    if engine == EngineKind::Rbc {
        if !(1..=1_048_576).contains(&spec.rbc.payload) {
            return Err(invalid(
                "rbc.payload",
                "payload must lie in 1..=1048576 bits",
            ));
        }
        let floor = 2 * (u64::from(spec.t) + 1);
        if spec.rbc.protocol == RbcProtocol::Ctrbc && u64::from(spec.rbc.payload) < floor {
            return Err(invalid(
                "rbc.payload",
                format!(
                    "ctrbc splits the payload into t+1 fragments and needs at least \
                     2(t+1) = {floor} payload bits at t = {}",
                    spec.t
                ),
            ));
        }
        if spec.rbc.max_waves == 0 {
            return Err(invalid("rbc.max_waves", "at least one wave is required"));
        }
    }
    if engine == EngineKind::Agreement && spec.agreement.mode == AgreementMode::Proven {
        use bftbcast_protocols::agreement::proven_max_t;
        if u64::from(spec.t) > proven_max_t(spec.r) {
            return Err(invalid(
                "agreement.mode",
                format!(
                    "proven mode requires t <= {} at r = {}",
                    proven_max_t(spec.r),
                    spec.r
                ),
            ));
        }
    }
    Ok(())
}

const SECTIONS: &[&str] = &[
    "",
    "topology",
    "faults",
    "source",
    "placement",
    "protocol",
    "adversary",
    "crash",
    "reactive",
    "agreement",
    "rbc",
    "probes",
    "sweep",
];

impl ScenarioFile {
    /// Parses and validates a scenario document.
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Parse`] for malformed text,
    /// [`ScenarioError::UnknownKey`] for sections/keys outside the
    /// grammar, [`ScenarioError::Invalid`] for bad field values, bad
    /// sweep ranges, or engine/section mismatches.
    pub fn parse(text: &str) -> Result<Self, ScenarioError> {
        let doc = scn::parse(text)?;
        for section in &doc.sections {
            if !SECTIONS.contains(&section.name.as_str()) {
                return Err(ScenarioError::UnknownKey {
                    section: section.name.clone(),
                    key: String::new(),
                });
            }
        }
        let empty = ScnSection {
            name: String::new(),
            line: 0,
            entries: Vec::new(),
        };
        let top = doc.section("").unwrap_or(&empty);
        check_keys(top, &["name", "engine", "seed"])?;
        let name = get_str(top, "name")?.unwrap_or("scenario").to_string();
        let engine_name = get_str(top, "engine")?.unwrap_or("counting");
        let engine = EngineKind::from_name(engine_name).ok_or_else(|| {
            invalid(
                "engine",
                format!("unknown engine {engine_name:?} (counting|crash|slot|agreement|rbc)"),
            )
        })?;
        let seed = get_u64(top, "seed")?.unwrap_or(0);

        // Engine/section applicability: a typo'd or misplaced section
        // must fail loudly, not silently no-op.
        for (section, engines) in [
            ("adversary", &[EngineKind::Counting][..]),
            ("crash", &[EngineKind::Crash][..]),
            ("reactive", &[EngineKind::Slot][..]),
            ("agreement", &[EngineKind::Agreement][..]),
            ("rbc", &[EngineKind::Rbc][..]),
            ("protocol", &[EngineKind::Counting, EngineKind::Crash][..]),
        ] {
            if doc.section(section).is_some() && !engines.contains(&engine) {
                return Err(invalid(
                    section,
                    format!(
                        "section [{section}] does not apply to engine = \"{}\"",
                        engine.name()
                    ),
                ));
            }
        }

        // [topology] — required.
        let topo = doc
            .section("topology")
            .ok_or_else(|| invalid("topology", "missing required section [topology]"))?;
        check_keys(topo, &["side", "width", "height", "r"])?;
        let r = get_u32(topo, "r")?.ok_or_else(|| invalid("topology.r", "radio range required"))?;
        let (width, height) = match (
            get_u32(topo, "side")?,
            get_u32(topo, "width")?,
            get_u32(topo, "height")?,
        ) {
            (Some(side), None, None) => (side, side),
            (None, Some(w), Some(h)) => (w, h),
            _ => return Err(invalid("topology", "give either side, or width and height")),
        };

        // [faults]
        let (t, mf) = match doc.section("faults") {
            None => (1, 1),
            Some(s) => {
                check_keys(s, &["t", "mf"])?;
                (
                    get_u32(s, "t")?.unwrap_or(1),
                    get_u64(s, "mf")?.unwrap_or(1),
                )
            }
        };

        // [source]
        let source = match doc.section("source") {
            None => (0, 0),
            Some(s) => {
                check_keys(s, &["x", "y"])?;
                (get_u32(s, "x")?.unwrap_or(0), get_u32(s, "y")?.unwrap_or(0))
            }
        };

        // [placement]
        let placement = match doc.section("placement") {
            None => PlacementSpec::None,
            Some(s) => {
                check_keys(s, &["kind", "offset", "stripes", "count", "p", "nodes"])?;
                match get_str(s, "kind")?.unwrap_or("none") {
                    "none" => PlacementSpec::None,
                    "lattice" => PlacementSpec::Lattice {
                        offset: get_u32(s, "offset")?.unwrap_or(1),
                    },
                    "stripes" => {
                        let what = "placement.stripes";
                        let Some(ScnValue::Array(items)) = s.get("stripes") else {
                            return Err(invalid(what, "expected stripes = [[y0, t, above], ...]"));
                        };
                        let mut stripes = Vec::with_capacity(items.len());
                        for item in items {
                            let ScnValue::Array(triple) = item else {
                                return Err(invalid(what, "each stripe is [y0, t, above]"));
                            };
                            let [ScnValue::Int(y0), ScnValue::Int(st), ScnValue::Bool(above)] =
                                triple.as_slice()
                            else {
                                return Err(invalid(
                                    what,
                                    "each stripe is [int y0, int t, bool victims_above]",
                                ));
                            };
                            let (Ok(y0), Ok(st)) = (u32::try_from(*y0), u32::try_from(*st)) else {
                                return Err(invalid(what, "stripe numbers must be non-negative"));
                            };
                            stripes.push((y0, st, *above));
                        }
                        PlacementSpec::Stripes(stripes)
                    }
                    "random" => PlacementSpec::Random {
                        count: get_u64(s, "count")?
                            .ok_or_else(|| invalid("placement.count", "random needs count"))?
                            as usize,
                    },
                    "bernoulli" => PlacementSpec::Bernoulli {
                        p: get_f64(s, "p")?
                            .ok_or_else(|| invalid("placement.p", "bernoulli needs p"))?,
                    },
                    "explicit" => PlacementSpec::Explicit(get_cells(s, "nodes")?),
                    other => {
                        return Err(invalid(
                            "placement.kind",
                            format!(
                                "unknown kind {other:?} \
                                 (none|lattice|stripes|random|bernoulli|explicit)"
                            ),
                        ))
                    }
                }
            }
        };

        // [protocol]
        let protocol = match doc.section("protocol") {
            None => ProtocolSpec::B,
            Some(s) => {
                check_keys(s, &["kind", "m", "quorum"])?;
                match get_str(s, "kind")?.unwrap_or("b") {
                    "b" => ProtocolSpec::B,
                    "koo" => ProtocolSpec::Koo,
                    "heter" => ProtocolSpec::Heter,
                    "starved" => ProtocolSpec::Starved {
                        m: get_u64(s, "m")?
                            .ok_or_else(|| invalid("protocol.m", "starved needs m"))?,
                    },
                    "majority" => ProtocolSpec::Majority {
                        quorum: get_u64(s, "quorum")?
                            .ok_or_else(|| invalid("protocol.quorum", "majority needs quorum"))?,
                    },
                    "crash_only" => ProtocolSpec::CrashOnly,
                    other => {
                        return Err(invalid(
                            "protocol.kind",
                            format!(
                                "unknown kind {other:?} \
                                 (b|koo|heter|starved|majority|crash_only)"
                            ),
                        ))
                    }
                }
            }
        };
        if protocol == ProtocolSpec::CrashOnly && engine != EngineKind::Crash {
            return Err(invalid(
                "protocol.kind",
                "crash_only applies to the crash engine only",
            ));
        }
        if matches!(protocol, ProtocolSpec::Majority { .. }) && engine != EngineKind::Counting {
            return Err(invalid(
                "protocol.kind",
                "majority applies to the counting engine only",
            ));
        }

        // [adversary]
        let adversary = match doc.section("adversary") {
            None => AdversarySpec::Oracle,
            Some(s) => {
                check_keys(s, &["kind"])?;
                let kind = get_str(s, "kind")?.unwrap_or("oracle");
                AdversarySpec::from_name(kind).ok_or_else(|| {
                    invalid(
                        "adversary.kind",
                        format!("unknown kind {kind:?} (oracle|greedy|chaos|passive)"),
                    )
                })?
            }
        };
        if matches!(protocol, ProtocolSpec::Majority { .. }) && adversary != AdversarySpec::Oracle {
            return Err(invalid(
                "adversary.kind",
                "the majority protocol is driven by the per-receiver oracle only",
            ));
        }

        // [crash]
        let crash = match doc.section("crash") {
            None => None,
            Some(s) => {
                check_keys(s, &["kind", "y0", "height", "nodes", "behavior", "after"])?;
                let nodes = match get_str(s, "kind")?.unwrap_or("stripe") {
                    "stripe" => CrashNodesSpec::Stripe {
                        y0: get_u32(s, "y0")?
                            .ok_or_else(|| invalid("crash.y0", "stripe needs y0"))?,
                        height: get_u32(s, "height")?.unwrap_or(1),
                    },
                    "explicit" => CrashNodesSpec::Explicit(get_cells(s, "nodes")?),
                    other => {
                        return Err(invalid(
                            "crash.kind",
                            format!("unknown kind {other:?} (stripe|explicit)"),
                        ))
                    }
                };
                let behavior = match (get_str(s, "behavior")?, get_u64(s, "after")?) {
                    (None, None) | (Some("immediate"), None) => CrashBehavior::Immediate,
                    (Some("after_quota"), None) => CrashBehavior::AfterQuota,
                    (None, Some(n)) => CrashBehavior::AfterCopies(n),
                    (Some(other), None) => {
                        return Err(invalid(
                            "crash.behavior",
                            format!("unknown behavior {other:?} (immediate|after_quota|after = N)"),
                        ))
                    }
                    (Some(_), Some(_)) => {
                        return Err(invalid(
                            "crash.behavior",
                            "give either behavior or after, not both",
                        ))
                    }
                };
                Some(CrashSpec { nodes, behavior })
            }
        };
        if engine == EngineKind::Crash && crash.is_none() {
            return Err(invalid("crash", "the crash engine needs a [crash] section"));
        }

        // [reactive]
        let reactive = match doc.section("reactive") {
            None => ReactiveSpec::default(),
            Some(s) => {
                check_keys(s, &["k", "mmax", "adversary", "budget", "max_rounds"])?;
                let adversary = match get_str(s, "adversary")?.unwrap_or("jammer") {
                    "passive" => ReactiveAdversary::Passive,
                    "jammer" => ReactiveAdversary::Jammer,
                    "canceller" => ReactiveAdversary::Canceller,
                    "nack_forger" => ReactiveAdversary::NackForger,
                    "witness_forger" => ReactiveAdversary::WitnessForger,
                    "mixed" => ReactiveAdversary::Mixed,
                    other => {
                        return Err(invalid(
                            "reactive.adversary",
                            format!(
                                "unknown adversary {other:?} (passive|jammer|canceller|\
                                 nack_forger|witness_forger|mixed)"
                            ),
                        ))
                    }
                };
                let defaults = ReactiveSpec::default();
                ReactiveSpec {
                    k: get_u64(s, "k")?.map_or(defaults.k, |k| k as usize),
                    mmax: get_u64(s, "mmax")?.unwrap_or(defaults.mmax),
                    adversary,
                    budget: get_u64(s, "budget")?,
                    max_rounds: get_u64(s, "max_rounds")?.unwrap_or(defaults.max_rounds),
                }
            }
        };

        // [agreement]
        let agreement = match doc.section("agreement") {
            None => AgreementSpec::default(),
            Some(s) => {
                check_keys(s, &["mode", "source", "p1", "pe"])?;
                let mode = match get_str(s, "mode")?.unwrap_or("cheap") {
                    "cheap" => AgreementMode::Cheap,
                    "proven" => AgreementMode::Proven,
                    other => {
                        return Err(invalid(
                            "agreement.mode",
                            format!("unknown mode {other:?} (cheap|proven)"),
                        ))
                    }
                };
                let source_name = get_str(s, "source")?.unwrap_or("correct");
                let source = SourceSpec::from_name(source_name).ok_or_else(|| {
                    invalid(
                        "agreement.source",
                        format!("unknown source {source_name:?} (correct|split|silent)"),
                    )
                })?;
                let defaults = AgreementSpec::default();
                let p1 = get_f64(s, "p1")?.unwrap_or(defaults.p1);
                let pe = get_f64(s, "pe")?.unwrap_or(defaults.pe);
                for (key, v) in [("p1", p1), ("pe", pe)] {
                    if !(0.0..=1.0).contains(&v) {
                        return Err(invalid(
                            &format!("agreement.{key}"),
                            "fractions must lie in [0, 1]",
                        ));
                    }
                }
                AgreementSpec {
                    mode,
                    source,
                    p1,
                    pe,
                }
            }
        };

        // [rbc]
        let rbc = match doc.section("rbc") {
            None => RbcSpec::default(),
            Some(s) => {
                check_keys(
                    s,
                    &["protocol", "payload", "max_waves", "schedule", "behavior"],
                )?;
                let pname = get_str(s, "protocol")?.unwrap_or("bracha");
                let protocol = RbcProtocol::from_name(pname).ok_or_else(|| {
                    invalid(
                        "rbc.protocol",
                        format!("unknown protocol {pname:?} (counting|bracha|ctrbc)"),
                    )
                })?;
                let sname = get_str(s, "schedule")?.unwrap_or("seeded");
                let schedule = ScheduleKind::from_name(sname).ok_or_else(|| {
                    invalid(
                        "rbc.schedule",
                        format!(
                            "unknown schedule {sname:?} \
                             (seeded|fifo|delay_quorum|targeted_reorder|gst)"
                        ),
                    )
                })?;
                let bname = get_str(s, "behavior")?.unwrap_or("mute");
                let behavior = ByzantineBehavior::from_name(bname).ok_or_else(|| {
                    invalid(
                        "rbc.behavior",
                        format!(
                            "unknown behavior {bname:?} \
                             (mute|equivocate|selective_send|stale_replay)"
                        ),
                    )
                })?;
                let defaults = RbcSpec::default();
                RbcSpec {
                    protocol,
                    payload: get_u32(s, "payload")?.unwrap_or(defaults.payload),
                    max_waves: get_u64(s, "max_waves")?.unwrap_or(defaults.max_waves),
                    schedule,
                    behavior,
                }
            }
        };

        // [probes]
        let probes = match doc.section("probes") {
            None => Vec::new(),
            Some(s) => {
                check_keys(s, &["nodes"])?;
                get_cells(s, "nodes")?
            }
        };
        for &(x, y) in &probes {
            check_probe_cell(x, y, width, height)?;
        }

        let base = PointSpec {
            width,
            height,
            r,
            t,
            mf,
            source,
            seed,
            placement,
            protocol,
            adversary,
            crash,
            reactive,
            agreement,
            rbc,
            label: Vec::new(),
        };

        validate_point(&base, engine)?;

        // [sweep] — validate every axis value against the base spec now
        // so a bad axis fails at parse time, not mid-batch.
        let mut sweep = Vec::new();
        if let Some(s) = doc.section("sweep") {
            for (key, value, _) in &s.entries {
                // An axis the engine never reads would silently yield N
                // identical rows — reject it like a misplaced section.
                let applies = match key.as_str() {
                    "k" | "mmax" => engine == EngineKind::Slot,
                    "p1" | "pe" => engine == EngineKind::Agreement,
                    "protocol" | "payload" | "schedule" | "behavior" => engine == EngineKind::Rbc,
                    _ => true,
                };
                if !applies {
                    return Err(invalid(
                        &format!("sweep.{key}"),
                        format!("axis does not apply to engine = \"{}\"", engine.name()),
                    ));
                }
                let values = axis_values(key, value)?;
                for &v in &values {
                    let mut probe_spec = base.clone();
                    apply_axis(&mut probe_spec, key, v)?;
                    validate_point(&probe_spec, engine)?;
                }
                sweep.push(Axis {
                    name: key.clone(),
                    values,
                });
            }
        }

        Ok(ScenarioFile {
            name,
            engine,
            probes,
            base,
            sweep,
        })
    }

    /// The base configuration (sweep overrides not applied).
    pub fn base(&self) -> &PointSpec {
        &self.base
    }

    /// Wraps one validated [`EngineSpec`](crate::spec::EngineSpec) as a
    /// single-point scenario file — the adapter that lets every
    /// `ScenarioFile` consumer (the batch runner, the server job queue)
    /// run a spec submitted as JSON through exactly the same code path
    /// (and therefore exactly the same store keys) as `.scn` text.
    pub fn from_spec(spec: &crate::spec::EngineSpec) -> ScenarioFile {
        ScenarioFile {
            name: spec.name().to_string(),
            engine: spec.engine(),
            probes: spec.probes().to_vec(),
            base: spec.point().clone(),
            sweep: Vec::new(),
        }
    }

    /// A copy of this file narrowed to one expanded sweep point: the
    /// point becomes the base document (its sweep label retained, so
    /// result rows still carry the axis values) and the sweep is
    /// dropped. `None` when `index` is out of range. The report layer
    /// renders single-point map figures through this instead of
    /// re-running the whole sweep.
    pub fn single_point(&self, index: usize) -> Option<ScenarioFile> {
        let point = self.points().into_iter().nth(index)?;
        Some(ScenarioFile {
            name: self.name.clone(),
            engine: self.engine,
            probes: self.probes.clone(),
            base: point,
            sweep: Vec::new(),
        })
    }

    /// Expands the file into one validated
    /// [`EngineSpec`](crate::spec::EngineSpec) per sweep point (the
    /// sweep labels are presentation and are dropped — a spec's
    /// identity is its cache key).
    ///
    /// # Errors
    ///
    /// None in practice for parse-produced files (everything was
    /// validated at parse time); hand-mutated files surface the usual
    /// [`ScenarioError`]s.
    pub fn specs(&self) -> Result<Vec<crate::spec::EngineSpec>, ScenarioError> {
        self.points()
            .into_iter()
            .map(|mut point| {
                point.label.clear();
                crate::spec::EngineSpec::from_parts(
                    self.name.clone(),
                    self.engine,
                    point,
                    self.probes.clone(),
                )
            })
            .collect()
    }

    /// Overrides one field by sweep-axis name (the `run --set
    /// key=value` path), then re-validates the base and every sweep
    /// point against the change. An override **pins** the field: a
    /// `[sweep]` axis over the same key is dropped (otherwise the
    /// sweep would silently reapply its values over the override at
    /// every point).
    ///
    /// # Errors
    ///
    /// [`ScenarioError::Invalid`] for an unknown axis, a value of the
    /// wrong shape, or an override that makes the base or any sweep
    /// point invalid.
    pub fn override_base(&mut self, key: &str, value: AxisValue) -> Result<(), ScenarioError> {
        apply_axis(&mut self.base, key, value)?;
        validate_point(&self.base, self.engine)?;
        self.sweep.retain(|axis| axis.name != key);
        for axis in &self.sweep {
            for &v in &axis.values {
                let mut probe_spec = self.base.clone();
                apply_axis(&mut probe_spec, &axis.name, v)?;
                validate_point(&probe_spec, self.engine)?;
            }
        }
        Ok(())
    }

    /// Expands the sweep axes into fully-resolved points (cartesian
    /// product in file order, later axes varying fastest). A file with
    /// no `[sweep]` section yields one point.
    pub fn points(&self) -> Vec<PointSpec> {
        let total: usize = self.sweep.iter().map(|a| a.values.len()).product();
        let mut out = Vec::with_capacity(total);
        let mut indices = vec![0usize; self.sweep.len()];
        loop {
            let mut spec = self.base.clone();
            for (axis, &i) in self.sweep.iter().zip(&indices) {
                let v = axis.values[i];
                apply_axis(&mut spec, &axis.name, v).expect("validated at parse time");
                spec.label.push((axis.name.clone(), v.render()));
            }
            out.push(spec);
            // Odometer increment, last axis fastest.
            let mut done = true;
            for i in (0..indices.len()).rev() {
                indices[i] += 1;
                if indices[i] < self.sweep[i].values.len() {
                    done = false;
                    break;
                }
                indices[i] = 0;
            }
            if done || self.sweep.is_empty() {
                break;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const F2: &str = concat!(
        "name = \"f2\"\n",
        "engine = \"counting\"\n",
        "[topology]\n",
        "width = 45\n",
        "height = 45\n",
        "r = 4\n",
        "[faults]\n",
        "t = 1\n",
        "mf = 1000\n",
        "[placement]\n",
        "kind = \"lattice\"\n",
        "offset = 41\n",
        "[protocol]\n",
        "kind = \"starved\"\n",
        "m = 59\n",
        "[adversary]\n",
        "kind = \"oracle\"\n",
        "[probes]\n",
        "nodes = [[0, 5], [5, 1]]\n",
    );

    #[test]
    fn parses_the_figure2_file() {
        let f = ScenarioFile::parse(F2).unwrap();
        assert_eq!(f.name, "f2");
        assert_eq!(f.engine, EngineKind::Counting);
        assert_eq!(f.probes, vec![(0, 5), (5, 1)]);
        let points = f.points();
        assert_eq!(points.len(), 1);
        let p = &points[0];
        assert_eq!((p.width, p.height, p.r), (45, 45, 4));
        assert_eq!((p.t, p.mf), (1, 1000));
        assert_eq!(p.protocol, ProtocolSpec::Starved { m: 59 });
        assert_eq!(p.placement, PlacementSpec::Lattice { offset: 41 });
        let s = p.build_scenario().unwrap();
        assert_eq!(s.params().m0(), 58);
    }

    #[test]
    fn sweep_expands_cartesian_last_axis_fastest() {
        let f = ScenarioFile::parse(concat!(
            "[topology]\nside = 15\nr = 1\n",
            "[protocol]\nkind = \"starved\"\nm = 1\n",
            "[sweep]\nm = [5, 6]\nseed = \"0..3\"\n",
        ))
        .unwrap();
        let points = f.points();
        assert_eq!(points.len(), 6);
        assert_eq!(
            points[0].label,
            vec![
                ("m".to_string(), "5".to_string()),
                ("seed".to_string(), "0".to_string())
            ]
        );
        assert_eq!(points[1].label[1].1, "1");
        assert_eq!(points[3].label[0].1, "6");
        assert_eq!(points[5].protocol, ProtocolSpec::Starved { m: 6 });
        assert_eq!(points[5].seed, 2);
    }

    #[test]
    fn unknown_sections_keys_and_axes_are_rejected() {
        let base = "[topology]\nside = 15\nr = 1\n";
        let err = ScenarioFile::parse(&format!("{base}[teleport]\nx = 1\n")).unwrap_err();
        assert!(matches!(err, ScenarioError::UnknownKey { .. }), "{err}");
        let err = ScenarioFile::parse("[topology]\nside = 15\nr = 1\nwarp = 9\n").unwrap_err();
        assert!(
            matches!(err, ScenarioError::UnknownKey { ref section, ref key }
                if section == "topology" && key == "warp"),
            "{err}"
        );
        let err = ScenarioFile::parse(&format!("{base}[sweep]\nwarp = [1]\n")).unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
    }

    #[test]
    fn bad_sweep_ranges_are_rejected() {
        let base = "[topology]\nside = 15\nr = 1\n[sweep]\n";
        for sweep in [
            "seed = \"5..2\"\n",
            "seed = \"1..1\"\n",
            "seed = \"a..b\"\n",
            "seed = []\n",
            "seed = 3\n",
            "seed = [1.5]\n", // seed is an integer axis
            "m = [5]\n",      // m without a starved protocol
        ] {
            let err = ScenarioFile::parse(&format!("{base}{sweep}")).unwrap_err();
            assert!(
                matches!(err, ScenarioError::Invalid { .. }),
                "{sweep:?} gave {err}"
            );
        }
    }

    #[test]
    fn inclusive_ranges_and_float_axes() {
        let f = ScenarioFile::parse(concat!(
            "engine = \"agreement\"\n",
            "[topology]\nside = 15\nr = 2\n",
            "[agreement]\nsource = \"split\"\n",
            "[sweep]\np1 = [0.0, 0.5, 1.0]\npe = \"0..=1\"\n",
        ))
        .unwrap();
        let points = f.points();
        assert_eq!(points.len(), 6);
        assert_eq!(points[4].agreement.p1, 1.0);
        assert_eq!(points[1].agreement.pe, 1.0);
    }

    #[test]
    fn engine_section_mismatches_are_rejected() {
        let base = "[topology]\nside = 15\nr = 1\n";
        for (engine, section) in [
            ("counting", "[crash]\ny0 = 5\n"),
            ("counting", "[reactive]\nk = 8\n"),
            ("slot", "[adversary]\nkind = \"oracle\"\n"),
            ("slot", "[protocol]\nkind = \"b\"\n"),
            ("crash", "[agreement]\nmode = \"cheap\"\n"),
            ("counting", "[rbc]\npayload = 64\n"),
            ("rbc", "[protocol]\nkind = \"b\"\n"),
            ("rbc", "[adversary]\nkind = \"oracle\"\n"),
        ] {
            let text = format!("engine = \"{engine}\"\n{base}{section}");
            let err = ScenarioFile::parse(&text).unwrap_err();
            assert!(
                matches!(err, ScenarioError::Invalid { .. }),
                "{text}: {err}"
            );
        }
    }

    #[test]
    fn off_torus_cells_and_bad_rates_are_rejected_at_parse_time() {
        for text in [
            // Source off the torus.
            "[topology]\nside = 15\nr = 1\n[source]\nx = 99\ny = 0\n",
            // Explicit placement cell off the torus.
            "[topology]\nside = 15\nr = 1\n[placement]\nkind = \"explicit\"\nnodes = [[0, 20]]\n",
            // Explicit crash cell off the torus.
            concat!(
                "engine = \"crash\"\n[topology]\nside = 15\nr = 1\n",
                "[crash]\nkind = \"explicit\"\nnodes = [[20, 0]]\n",
            ),
            // Probe off the torus.
            "[topology]\nside = 15\nr = 1\n[probes]\nnodes = [[99, 0]]\n",
            // Bernoulli rate outside [0, 1], fixed and swept.
            "[topology]\nside = 15\nr = 1\n[placement]\nkind = \"bernoulli\"\np = 1.5\n",
            concat!(
                "[topology]\nside = 15\nr = 1\n",
                "[placement]\nkind = \"bernoulli\"\np = 0.1\n[sweep]\np = [0.1, 1.5]\n",
            ),
            // Slot payload width outside the engine's 1..=63 bound.
            "engine = \"slot\"\n[topology]\nside = 15\nr = 1\n[reactive]\nk = 100\n",
            concat!(
                "engine = \"slot\"\n[topology]\nside = 15\nr = 1\n",
                "[reactive]\nk = 8\n[sweep]\nk = [8, 100]\n",
            ),
            // Sweep axes the engine never reads.
            "[topology]\nside = 15\nr = 1\n[sweep]\np1 = [0.0, 0.5]\n",
            "[topology]\nside = 15\nr = 1\n[sweep]\nmmax = [1, 2]\n",
            "[topology]\nside = 15\nr = 1\n[sweep]\nprotocol = [\"bracha\"]\n",
            "[topology]\nside = 15\nr = 1\n[sweep]\npayload = [64, 128]\n",
            // Proven-mode t bound, fixed and reached via a t sweep.
            concat!(
                "engine = \"agreement\"\n[topology]\nside = 9\nr = 1\n[faults]\nt = 2\n",
                "[agreement]\nmode = \"proven\"\n",
            ),
            concat!(
                "engine = \"agreement\"\n[topology]\nside = 9\nr = 1\n[faults]\nt = 1\n",
                "[agreement]\nmode = \"proven\"\n[sweep]\nt = [1, 2]\n",
            ),
        ] {
            let err = ScenarioFile::parse(text).unwrap_err();
            assert!(
                matches!(err, ScenarioError::Invalid { .. }),
                "{text:?} gave {err}"
            );
        }
    }

    #[test]
    fn crash_engine_requires_crash_section() {
        let err =
            ScenarioFile::parse("engine = \"crash\"\n[topology]\nside = 15\nr = 1\n").unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
    }

    #[test]
    fn local_bound_violations_surface_from_point_builds() {
        let f = ScenarioFile::parse(concat!(
            "[topology]\nside = 15\nr = 1\n",
            "[placement]\nkind = \"explicit\"\nnodes = [[1, 1], [2, 1], [3, 1]]\n",
        ))
        .unwrap();
        let err = f.points()[0].build_scenario().unwrap_err();
        assert!(
            matches!(err, ScenarioError::LocalBoundViolated { .. }),
            "{err}"
        );
    }

    #[test]
    fn override_base_pins_fields_and_drops_matching_sweep_axes() {
        let parse = || {
            ScenarioFile::parse(concat!(
                "[topology]\nside = 15\nr = 1\n",
                "[protocol]\nkind = \"starved\"\nm = 1\n",
                "[sweep]\nm = [5, 6]\nseed = \"0..3\"\n",
            ))
            .unwrap()
        };
        // Overriding a swept key pins it: the m axis is dropped, the
        // seed axis survives.
        let mut f = parse();
        f.override_base("m", AxisValue::Int(9)).unwrap();
        let points = f.points();
        assert_eq!(points.len(), 3, "only the seed axis remains");
        for p in &points {
            assert_eq!(p.protocol, ProtocolSpec::Starved { m: 9 });
            assert_eq!(p.label.len(), 1, "no m label: {:?}", p.label);
        }
        // Overriding a non-swept key leaves the sweep intact.
        let mut f = parse();
        f.override_base("mf", AxisValue::Int(7)).unwrap();
        assert_eq!(f.points().len(), 6);
        assert!(f.points().iter().all(|p| p.mf == 7));
        // Unknown keys and wrong shapes are named errors.
        let mut f = parse();
        assert!(f.override_base("warp", AxisValue::Int(1)).is_err());
        assert!(f.override_base("m", AxisValue::Int(-1)).is_err());
    }

    #[test]
    fn defaults_fill_in() {
        let f = ScenarioFile::parse("[topology]\nside = 15\nr = 1\n").unwrap();
        let p = &f.points()[0];
        assert_eq!(f.name, "scenario");
        assert_eq!(p.protocol, ProtocolSpec::B);
        assert_eq!(p.adversary, AdversarySpec::Oracle);
        assert_eq!((p.t, p.mf, p.seed), (1, 1, 0));
        assert_eq!(p.placement, PlacementSpec::None);
        assert_eq!(p.rbc, RbcSpec::default());
        assert_eq!(p.rbc.protocol, RbcProtocol::Bracha);
    }

    #[test]
    fn rbc_engine_parses_with_protocol_and_payload_sweeps() {
        let f = ScenarioFile::parse(concat!(
            "engine = \"rbc\"\nseed = 7\n",
            "[topology]\nside = 15\nr = 1\n",
            "[faults]\nt = 2\n",
            "[rbc]\nprotocol = \"ctrbc\"\npayload = 4096\nmax_waves = 500\n",
            "[sweep]\nprotocol = [\"counting\", \"bracha\", \"ctrbc\"]\npayload = [64, 4096]\n",
        ))
        .unwrap();
        assert_eq!(f.engine, EngineKind::Rbc);
        let points = f.points();
        assert_eq!(points.len(), 6);
        assert_eq!(points[0].rbc.protocol, RbcProtocol::Counting);
        assert_eq!(points[0].rbc.payload, 64);
        assert_eq!(points[0].rbc.max_waves, 500);
        assert_eq!(points[5].rbc.protocol, RbcProtocol::Ctrbc);
        assert_eq!(points[5].rbc.payload, 4096);
        assert_eq!(
            points[0].label,
            vec![
                ("protocol".to_string(), "counting".to_string()),
                ("payload".to_string(), "64".to_string()),
            ]
        );
    }

    #[test]
    fn rbc_payload_bounds_are_validated_per_point() {
        let base = "engine = \"rbc\"\n[topology]\nside = 15\nr = 1\n";
        for text in [
            // Zero-width payload.
            format!("{base}[rbc]\npayload = 0\n"),
            // Above the cap.
            format!("{base}[rbc]\npayload = 2000000\n"),
            // CTRBC needs >= 2(t+1) payload bits: 4 < 6 at t = 2.
            format!("{base}[faults]\nt = 2\n[rbc]\nprotocol = \"ctrbc\"\npayload = 4\n"),
            // Same bound reached through a t sweep.
            format!(
                "{base}[faults]\nt = 1\n[rbc]\nprotocol = \"ctrbc\"\npayload = 4\n\
                 [sweep]\nt = [1, 2]\n"
            ),
            // ... or a protocol sweep over a small fixed payload.
            format!(
                "{base}[faults]\nt = 2\n[rbc]\npayload = 4\n\
                 [sweep]\nprotocol = [\"bracha\", \"ctrbc\"]\n"
            ),
            // No waves at all.
            format!("{base}[rbc]\nmax_waves = 0\n"),
            // Unknown protocol name, fixed and swept.
            format!("{base}[rbc]\nprotocol = \"gossip\"\n"),
            format!("{base}[sweep]\nprotocol = [\"gossip\"]\n"),
            // Numbers in the protocol axis, names in a numeric axis.
            format!("{base}[sweep]\nprotocol = [1, 2]\n"),
            format!("{base}[sweep]\npayload = [\"bracha\"]\n"),
        ] {
            let err = ScenarioFile::parse(&text).unwrap_err();
            assert!(
                matches!(err, ScenarioError::Invalid { .. }),
                "{text:?} gave {err}"
            );
        }
    }
}
