//! The batch runner: expands a [`ScenarioFile`]'s sweep into points,
//! fans them across worker threads, and reports one result row per
//! point — as JSON lines (the machine-readable interface, schema
//! documented in `EXPERIMENTS.md`) or a [`Table`].
//!
//! Every point is deterministic given the file (all randomness is
//! seeded from the point itself), so the parallel fan-out through
//! [`bftbcast_sim::runner::sweep`] never changes results.
//!
//! ```
//! use bftbcast::batch::run_file;
//! use bftbcast::scenario_file::ScenarioFile;
//!
//! let file = ScenarioFile::parse(concat!(
//!     "name = \"demo\"\n",
//!     "[topology]\nside = 15\nr = 1\n",
//!     "[faults]\nt = 1\nmf = 4\n",
//!     "[placement]\nkind = \"lattice\"\n",
//!     "[protocol]\nkind = \"starved\"\nm = 4\n",
//!     "[sweep]\nm = [2, 4, 8]\n",
//! ))
//! .unwrap();
//! let report = run_file(&file).unwrap();
//! assert_eq!(report.results.len(), 3);
//! // m = 2 < m0 stalls; m = 8 = 2*m0 is Theorem 2's regime.
//! assert!(!report.results[0].outcome.success());
//! assert!(report.results[2].outcome.success());
//! assert_eq!(report.jsonl().lines().count(), 3);
//! ```

use bftbcast_net::{NodeId, Value};
use bftbcast_sim::engine::{EngineOutcome, Probe, SimEngine};
use bftbcast_sim::runner::{sweep_bounded, Table};
use bftbcast_store::Store;

use crate::cache;
use crate::json::{self, Object};
use crate::scenario::ScenarioError;
use crate::scenario_file::{EngineKind, PointSpec, ScenarioFile};
use crate::spec::EngineSpec;

/// One probe cell's tallies after a point's run.
#[derive(Debug, Clone)]
pub struct ProbeResult {
    /// Probed cell.
    pub x: u32,
    /// Probed cell.
    pub y: u32,
    /// The cell's node id.
    pub node: NodeId,
    /// Its tallies.
    pub probe: Probe,
}

/// One sweep point's result.
#[derive(Debug, Clone)]
pub struct PointResult {
    /// `(axis, rendered value)` identifying the point.
    pub point: Vec<(String, String)>,
    /// The engine outcome.
    pub outcome: EngineOutcome,
    /// Probe tallies (every engine answers for the nodes it tracks;
    /// see [`Probe`]).
    pub probes: Vec<ProbeResult>,
}

/// All results of one scenario file.
#[derive(Debug, Clone)]
pub struct BatchReport {
    /// The scenario's name.
    pub name: String,
    /// The engine that ran.
    pub engine: EngineKind,
    /// One result per sweep point, in sweep order.
    pub results: Vec<PointResult>,
    /// Points answered from the outcome store (0 without a store).
    pub cache_hits: usize,
    /// Points that ran an engine (equals `results.len()` without a
    /// store).
    pub cache_misses: usize,
}

/// Execution knobs for [`run_file_with`].
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchOptions<'a> {
    /// Cap on the worker-thread count (`None` = one per core). Must be
    /// at least 1 when given.
    pub jobs: Option<usize>,
    /// Outcome store consulted before — and recorded after — every
    /// engine run.
    pub store: Option<&'a Store>,
}

/// Builds the right engine for one point of a scenario file — a thin
/// adapter over the canonical construction path,
/// [`EngineSpec::build_engine`](crate::spec::EngineSpec::build_engine).
///
/// # Errors
///
/// Any [`ScenarioError`] from spec validation or scenario construction
/// (invalid grid, cross-field violation, local-bound violation, …).
pub fn build_engine(
    engine: EngineKind,
    point: &PointSpec,
) -> Result<Box<dyn SimEngine>, ScenarioError> {
    EngineSpec::from_parts(String::new(), engine, point.clone(), Vec::new())?.build_engine()
}

/// Runs one point: build the engine, run to fixpoint, read the probes.
///
/// # Errors
///
/// Any [`ScenarioError`] from engine construction.
pub fn run_point(file: &ScenarioFile, point: &PointSpec) -> Result<PointResult, ScenarioError> {
    let mut engine = build_engine(file.engine, point)?;
    // Probe cells are validated at parse time; re-check before the
    // (possibly expensive) run as a backstop against hand-built files.
    for &(x, y) in &file.probes {
        let grid = engine.topology().grid();
        crate::scenario_file::check_probe_cell(x, y, grid.width(), grid.height())?;
    }
    let outcome = engine.run_to_completion();
    let mut probes = Vec::with_capacity(file.probes.len());
    for &(x, y) in &file.probes {
        let node = engine.topology().grid().id_at(x, y);
        if let Some(probe) = engine.probe(node) {
            probes.push(ProbeResult { x, y, node, probe });
        }
    }
    Ok(PointResult {
        point: point.label.clone(),
        outcome,
        probes,
    })
}

/// Runs one point through the outcome store: consult before, record
/// after, single-flight on the content key. Returns the result plus
/// whether it was a cache hit.
fn run_point_cached(
    file: &ScenarioFile,
    point: &PointSpec,
    store: &Store,
) -> Result<(PointResult, bool), ScenarioError> {
    let key = cache::point_key(file.engine, point, &file.probes);
    let mut computed: Option<PointResult> = None;
    let (bytes, hit) = store.get_or_compute(key, || -> Result<Vec<u8>, ScenarioError> {
        let result = run_point(file, point)?;
        let encoded = cache::encode_result(&result);
        computed = Some(result);
        Ok(encoded)
    })?;
    let result = match computed {
        Some(result) => result,
        None => {
            let mut result =
                cache::decode_result(&bytes).ok_or_else(|| ScenarioError::Invalid {
                    what: "store".to_string(),
                    message: format!(
                        "corrupt outcome-store entry for key {key:016x}; \
                     delete the store directory to rebuild it"
                    ),
                })?;
            result.point = point.label.clone();
            result
        }
    };
    Ok((result, hit))
}

/// Runs every point of a scenario file, fanned out over worker threads
/// (deterministic per point, so parallelism never changes results).
///
/// # Errors
///
/// The first [`ScenarioError`] any point produced, in sweep order.
pub fn run_file(file: &ScenarioFile) -> Result<BatchReport, ScenarioError> {
    run_file_with(file, &BatchOptions::default())
}

/// [`run_file`] with execution knobs: a worker-count cap (`--jobs N`)
/// and an optional content-addressed outcome store. With a store,
/// every point is looked up before any engine runs and recorded after;
/// identical points — within the sweep, across invocations, across
/// processes sharing the store directory — are computed exactly once.
///
/// # Errors
///
/// [`ScenarioError::Invalid`] (`what = "jobs"`) for a zero worker
/// count, otherwise the first [`ScenarioError`] any point produced, in
/// sweep order.
pub fn run_file_with(
    file: &ScenarioFile,
    options: &BatchOptions<'_>,
) -> Result<BatchReport, ScenarioError> {
    if options.jobs == Some(0) {
        return Err(ScenarioError::Invalid {
            what: "jobs".to_string(),
            message: "worker count must be at least 1".to_string(),
        });
    }
    let points = file.points();
    let results = sweep_bounded(&points, options.jobs, |p| match options.store {
        None => run_point(file, p).map(|result| (result, false)),
        Some(store) => run_point_cached(file, p, store),
    });
    let mut ok = Vec::with_capacity(results.len());
    let (mut cache_hits, mut cache_misses) = (0, 0);
    for r in results {
        let (result, hit) = r?;
        if hit {
            cache_hits += 1;
        } else {
            cache_misses += 1;
        }
        ok.push(result);
    }
    Ok(BatchReport {
        name: file.name.clone(),
        engine: file.engine,
        results: ok,
        cache_hits,
        cache_misses,
    })
}

fn value_json(v: Option<Value>) -> String {
    match v {
        None => "null".to_string(),
        Some(Value::TRUE) => json::string("true"),
        Some(Value::FORGED) => json::string("forged"),
        Some(Value(other)) => other.to_string(),
    }
}

fn outcome_object(outcome: &EngineOutcome) -> Object {
    match outcome {
        EngineOutcome::Counting(o) => Object::new()
            .str("kind", "counting")
            .u64("good_nodes", o.good_nodes as u64)
            .u64("accepted_true", o.accepted_true as u64)
            .u64("wrong_accepts", o.wrong_accepts as u64)
            .u64("waves", o.waves as u64)
            .u64("good_copies_sent", o.good_copies_sent)
            .u64("source_copies_sent", o.source_copies_sent)
            .u64("adversary_spent", o.adversary_spent)
            .f64("coverage", o.coverage())
            .bool("complete", o.is_complete())
            .bool("correct", o.is_correct())
            .bool("reliable", o.is_reliable()),
        EngineOutcome::Reactive(o) => Object::new()
            .str("kind", "reactive")
            .u64("good_nodes", o.good_nodes as u64)
            .u64("committed_true", o.committed_true as u64)
            .u64("committed_wrong", o.committed_wrong as u64)
            .u64("rounds", o.rounds)
            .u64("data_transmissions", o.data_transmissions)
            .u64("nack_transmissions", o.nack_transmissions)
            .u64("max_node_messages", o.max_node_messages)
            .u64("subbits_per_message", o.subbits_per_message)
            .u64("adversary_spent", o.adversary_spent)
            .u64("detections", o.detections)
            .u64("undetected_corruptions", o.undetected_corruptions)
            .u64("uncommitted", o.uncommitted.len() as u64)
            .f64("coverage", o.coverage())
            .bool("reliable", o.is_reliable()),
        EngineOutcome::Agreement(o) => {
            let decided: Vec<String> = o.decided_values().iter().map(|v| v.0.to_string()).collect();
            Object::new()
                .str("kind", "agreement")
                .u64("members", o.decisions.len() as u64)
                .bool("validity", o.validity_holds())
                .bool("agreement", o.agreement_holds())
                .u64("defaults", o.default_count() as u64)
                .u64("conflicted", o.conflicted_count() as u64)
                .raw("decided_values", format!("[{}]", decided.join(",")))
        }
        EngineOutcome::Rbc(o) => Object::new()
            .str("kind", "rbc")
            .u64("good_nodes", o.good_nodes as u64)
            .u64("delivered", o.delivered as u64)
            .u64("messages", o.messages)
            .u64("wire_bits", o.wire_bits)
            .u64("waves", o.waves)
            .u64("echoes_sent", o.echoes_sent)
            .u64("readies_sent", o.readies_sent)
            .f64("coverage", o.coverage())
            .bool("reliable", o.is_reliable()),
    }
}

impl BatchReport {
    /// Renders the report as JSON lines: one self-describing object per
    /// point (schema documented in `EXPERIMENTS.md`).
    pub fn jsonl(&self) -> String {
        let mut out = String::new();
        for result in &self.results {
            let mut point = Object::new();
            for (axis, value) in &result.point {
                // Numeric axis values stay raw JSON numbers; name axes
                // (the rbc protocol) must be quoted to keep the line
                // parseable.
                point = if value.parse::<f64>().is_ok() {
                    point.raw(axis, value.clone())
                } else {
                    point.str(axis, value)
                };
            }
            let probes: Vec<String> = result
                .probes
                .iter()
                .map(|p| {
                    Object::new()
                        .u64("x", u64::from(p.x))
                        .u64("y", u64::from(p.y))
                        .u64("node", p.node as u64)
                        .u64("tally_true", p.probe.tally_true)
                        .u64("tally_wrong", p.probe.tally_wrong)
                        .u64("intake", p.probe.intake())
                        .u64("decided_neighbors", p.probe.decided_neighbors as u64)
                        .raw("accepted", value_json(p.probe.accepted))
                        .u64("phase", p.probe.phase)
                        .u64("conflicts", p.probe.conflicts)
                        .render()
                })
                .collect();
            let line = Object::new()
                .str("scenario", &self.name)
                .str("engine", self.engine.name())
                .raw("point", point.render())
                .raw("outcome", outcome_object(&result.outcome).render())
                .raw("probes", format!("[{}]", probes.join(",")))
                .render();
            out.push_str(&line);
            out.push('\n');
        }
        out
    }

    /// Renders the report as a [`Table`] — the same row shape the bench
    /// harness prints and serializes into `BENCH_*.json`.
    pub fn table(&self) -> Table {
        let axes: Vec<String> = self
            .results
            .first()
            .map(|r| r.point.iter().map(|(a, _)| a.clone()).collect())
            .unwrap_or_default();
        let outcome_headers: &[&str] = match self.engine {
            EngineKind::Counting | EngineKind::Crash => {
                &["coverage", "complete", "correct", "waves"]
            }
            EngineKind::Slot => &["coverage", "reliable", "rounds", "max_node_messages"],
            EngineKind::Agreement => &["members", "validity", "agreement", "defaults"],
            EngineKind::Rbc => &["coverage", "messages", "wire_bits", "waves"],
        };
        let headers: Vec<&str> = axes
            .iter()
            .map(String::as_str)
            .chain(outcome_headers.iter().copied())
            .collect();
        let mut table = Table::new(
            format!("scenario {} ({} engine)", self.name, self.engine.name()),
            &headers,
        );
        for result in &self.results {
            let mut row: Vec<String> = result.point.iter().map(|(_, v)| v.clone()).collect();
            match &result.outcome {
                EngineOutcome::Counting(o) => {
                    row.push(format!("{:.3}", o.coverage()));
                    row.push(o.is_complete().to_string());
                    row.push(o.is_correct().to_string());
                    row.push(o.waves.to_string());
                }
                EngineOutcome::Reactive(o) => {
                    row.push(format!("{:.3}", o.coverage()));
                    row.push(o.is_reliable().to_string());
                    row.push(o.rounds.to_string());
                    row.push(o.max_node_messages.to_string());
                }
                EngineOutcome::Agreement(o) => {
                    row.push(o.decisions.len().to_string());
                    row.push(o.validity_holds().to_string());
                    row.push(o.agreement_holds().to_string());
                    row.push(o.default_count().to_string());
                }
                EngineOutcome::Rbc(o) => {
                    row.push(format!("{:.3}", o.coverage()));
                    row.push(o.messages.to_string());
                    row.push(o.wire_bits.to_string());
                    row.push(o.waves.to_string());
                }
            }
            table.row(&row);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn f2_scenario_reproduces_the_paper_goldens() {
        // The same construction as scenarios/f2.scn (kept inline so the
        // core crate's tests need no file-system layout assumptions;
        // the repo-level round-trip test reads the actual file).
        let file = ScenarioFile::parse(concat!(
            "name = \"f2\"\n",
            "[topology]\nwidth = 45\nheight = 45\nr = 4\n",
            "[faults]\nt = 1\nmf = 1000\n",
            "[placement]\nkind = \"lattice\"\noffset = 41\n",
            "[protocol]\nkind = \"starved\"\nm = 59\n",
            "[adversary]\nkind = \"oracle\"\n",
            "[probes]\nnodes = [[0, 5], [5, 1]]\n",
        ))
        .unwrap();
        let report = run_file(&file).unwrap();
        assert_eq!(report.results.len(), 1);
        let result = &report.results[0];
        let o = result.outcome.as_counting().unwrap();
        assert_eq!(o.accepted_true, 84, "stall at 84 decided nodes");
        assert!(!o.is_complete());
        let gray = &result.probes[0];
        assert_eq!(gray.probe.intake(), 2065, "gray-node intake");
        let p = &result.probes[1];
        assert_eq!(p.probe.intake(), 1947, "copies delivered to p");
        assert_eq!(p.probe.tally_wrong, 947, "copies corrupted at p");
        assert_eq!(p.probe.accepted, None, "p stays undecided");

        let jsonl = report.jsonl();
        assert_eq!(jsonl.lines().count(), 1);
        for needle in [
            "\"intake\":2065",
            "\"intake\":1947",
            "\"tally_wrong\":947",
            "\"accepted_true\":84",
        ] {
            assert!(jsonl.contains(needle), "{needle} missing from {jsonl}");
        }
    }

    #[test]
    fn sweep_rows_arrive_in_order_with_labels() {
        let file = ScenarioFile::parse(concat!(
            "name = \"t1-mini\"\n",
            "[topology]\nside = 15\nr = 1\n",
            "[faults]\nt = 1\nmf = 10\n",
            "[placement]\nkind = \"stripes\"\nstripes = [[5, 1, true], [11, 1, false]]\n",
            "[protocol]\nkind = \"starved\"\nm = 1\n",
            "[sweep]\nm = [10, 11, 22]\n",
        ))
        .unwrap();
        // m0 = ceil(21/2) = 11: starved below, complete at and above.
        let report = run_file(&file).unwrap();
        let complete: Vec<bool> = report
            .results
            .iter()
            .map(|r| r.outcome.as_counting().unwrap().is_complete())
            .collect();
        assert_eq!(complete, vec![false, true, true]);
        assert_eq!(report.results[0].point, vec![("m".into(), "10".into())]);
        let table = report.table();
        assert_eq!(table.len(), 3);
        assert_eq!(table.headers()[0], "m");
    }

    #[test]
    fn crash_engine_runs_from_a_file() {
        let file = ScenarioFile::parse(concat!(
            "engine = \"crash\"\n",
            "[topology]\nside = 20\nr = 2\n",
            "[faults]\nt = 1\nmf = 10\n",
            "[placement]\nkind = \"lattice\"\n",
            "[crash]\nkind = \"stripe\"\ny0 = 9\nheight = 1\n",
        ))
        .unwrap();
        let report = run_file(&file).unwrap();
        let o = report.results[0].outcome.as_counting().unwrap();
        assert!(o.is_correct());
        assert!(o.is_complete(), "height-1 stripe cannot block r = 2");
    }

    #[test]
    fn slot_engine_runs_from_a_file_with_probes() {
        let file = ScenarioFile::parse(concat!(
            "engine = \"slot\"\nseed = 42\n",
            "[topology]\nside = 15\nr = 1\n",
            "[faults]\nt = 1\nmf = 4\n",
            "[placement]\nkind = \"random\"\ncount = 8\n",
            "[reactive]\nk = 8\nadversary = \"jammer\"\n",
            "[probes]\nnodes = [[3, 3]]\n",
        ))
        .unwrap();
        let report = run_file(&file).unwrap();
        let result = &report.results[0];
        let o = result.outcome.as_reactive().unwrap();
        assert!(o.is_reliable(), "uncommitted: {:?}", o.uncommitted);
        // The slot engine answers probes for good nodes: a reliable run
        // means (3, 3) committed the broadcast value, delivered by at
        // least one data frame.
        if let [p] = result.probes.as_slice() {
            assert!(p.probe.tally_true >= 1, "{:?}", p.probe);
            assert_eq!(p.probe.accepted, Some(bftbcast_net::Value::TRUE));
            assert!(p.probe.decided_neighbors >= 1);
        } else {
            panic!("probe cell fell on a bad node: {:?}", result.probes);
        }
    }

    #[test]
    fn agreement_engine_answers_probes_for_members() {
        let file = ScenarioFile::parse(concat!(
            "engine = \"agreement\"\n",
            "[topology]\nside = 15\nr = 2\n",
            "[faults]\nt = 1\nmf = 10\n",
            "[source]\nx = 7\ny = 7\n",
            // (6, 8) is a member cell but Byzantine; (7, 8) is a good
            // member; (0, 0) is outside the source neighborhood.
            "[placement]\nkind = \"explicit\"\nnodes = [[6, 8]]\n",
            "[agreement]\nmode = \"proven\"\nsource = \"correct\"\n",
            "[probes]\nnodes = [[7, 8], [0, 0]]\n",
        ))
        .unwrap();
        let report = run_file(&file).unwrap();
        let result = &report.results[0];
        let o = result.outcome.as_agreement().unwrap();
        assert!(o.agreement_holds() && o.validity_holds());
        // Only the deciding member answers; the far cell yields no row.
        assert_eq!(result.probes.len(), 1, "{:?}", result.probes);
        let p = &result.probes[0];
        assert_eq!((p.x, p.y), (7, 8));
        assert_eq!(p.probe.tally_true, o.decisions.len() as u64, "unanimous");
        assert_eq!(p.probe.tally_wrong, 0);
        assert!(p.probe.accepted.is_some());
    }

    #[test]
    fn agreement_engine_sweeps_fractions_from_a_file() {
        let file = ScenarioFile::parse(concat!(
            "engine = \"agreement\"\n",
            "[topology]\nside = 15\nr = 2\n",
            "[faults]\nt = 1\nmf = 10\n",
            "[source]\nx = 7\ny = 7\n",
            "[placement]\nkind = \"explicit\"\nnodes = [[6, 8]]\n",
            "[agreement]\nmode = \"proven\"\nsource = \"split\"\n",
            "[sweep]\np1 = [0.0, 0.5, 1.0]\n",
        ))
        .unwrap();
        let report = run_file(&file).unwrap();
        assert_eq!(report.results.len(), 3);
        for r in &report.results {
            let o = r.outcome.as_agreement().unwrap();
            assert!(o.agreement_holds(), "proven mode never splits");
        }
    }

    #[test]
    fn rbc_engine_sweeps_protocols_from_a_file() {
        let file = ScenarioFile::parse(concat!(
            "engine = \"rbc\"\nseed = 7\n",
            "[topology]\nside = 9\nr = 1\n",
            "[faults]\nt = 1\nmf = 1\n",
            "[placement]\nkind = \"explicit\"\nnodes = [[4, 4]]\n",
            "[rbc]\npayload = 256\n",
            "[probes]\nnodes = [[2, 2], [4, 4]]\n",
            "[sweep]\nprotocol = [\"counting\", \"bracha\", \"ctrbc\"]\n",
        ))
        .unwrap();
        let report = run_file(&file).unwrap();
        assert_eq!(report.results.len(), 3);
        for (r, name) in report.results.iter().zip(["counting", "bracha", "ctrbc"]) {
            let o = r.outcome.as_rbc().unwrap();
            assert!(o.is_reliable(), "{name}: {o:?}");
            assert_eq!(r.point, vec![("protocol".into(), name.into())]);
            // (4, 4) is Byzantine and mute; only (2, 2) answers.
            assert_eq!(r.probes.len(), 1, "{name}: {:?}", r.probes);
            assert_eq!((r.probes[0].x, r.probes[0].y), (2, 2));
        }
        let jsonl = report.jsonl();
        assert_eq!(jsonl.lines().count(), 3);
        assert!(jsonl.contains("\"kind\":\"rbc\""), "{jsonl}");
        assert!(jsonl.contains("\"wire_bits\":"), "{jsonl}");
        assert!(
            jsonl.contains("\"protocol\":\"ctrbc\""),
            "name labels must stay valid JSON: {jsonl}"
        );
        let table = report.table();
        assert_eq!(table.headers()[0], "protocol");
        assert!(table.headers().contains(&"wire_bits".to_string()));
    }

    #[test]
    fn local_bound_violation_surfaces_from_run_file() {
        let file = ScenarioFile::parse(concat!(
            "[topology]\nside = 15\nr = 1\n",
            "[placement]\nkind = \"explicit\"\nnodes = [[1, 1], [2, 1], [3, 1]]\n",
        ))
        .unwrap();
        let err = run_file(&file).unwrap_err();
        assert!(matches!(err, ScenarioError::LocalBoundViolated { .. }));
    }

    #[test]
    fn probe_off_the_torus_is_rejected_at_parse_time() {
        let err = ScenarioFile::parse(concat!(
            "[topology]\nside = 15\nr = 1\n",
            "[probes]\nnodes = [[99, 0]]\n",
        ))
        .unwrap_err();
        assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
    }

    #[test]
    fn zero_jobs_is_a_named_error() {
        let file = ScenarioFile::parse("[topology]\nside = 15\nr = 1\n").unwrap();
        let err = run_file_with(
            &file,
            &BatchOptions {
                jobs: Some(0),
                store: None,
            },
        )
        .unwrap_err();
        assert!(
            matches!(err, ScenarioError::Invalid { ref what, .. } if what == "jobs"),
            "{err}"
        );
    }

    #[test]
    fn store_makes_reruns_bit_identical_cache_hits() {
        let file = ScenarioFile::parse(concat!(
            "name = \"cached\"\n",
            "[topology]\nside = 15\nr = 1\n",
            "[faults]\nt = 1\nmf = 4\n",
            "[placement]\nkind = \"lattice\"\n",
            "[protocol]\nkind = \"starved\"\nm = 4\n",
            "[probes]\nnodes = [[3, 3]]\n",
            "[sweep]\nm = [2, 8]\n",
        ))
        .unwrap();
        let store = Store::in_memory();
        let cold = run_file_with(
            &file,
            &BatchOptions {
                jobs: Some(1),
                store: Some(&store),
            },
        )
        .unwrap();
        assert_eq!((cold.cache_hits, cold.cache_misses), (0, 2));
        assert_eq!(store.len(), 2);
        let warm = run_file_with(
            &file,
            &BatchOptions {
                jobs: None,
                store: Some(&store),
            },
        )
        .unwrap();
        assert_eq!((warm.cache_hits, warm.cache_misses), (2, 0));
        assert_eq!(warm.jsonl(), cold.jsonl(), "cached rows are bit-identical");
        assert_eq!(store.len(), 2, "no new entries on the warm run");
        // A storeless run reports everything as a miss.
        let plain = run_file(&file).unwrap();
        assert_eq!((plain.cache_hits, plain.cache_misses), (0, 2));
        assert_eq!(plain.jsonl(), cold.jsonl());
    }

    #[test]
    fn duplicate_sweep_points_share_one_cache_entry() {
        // The same m twice: two rows, one engine run recorded.
        let file = ScenarioFile::parse(concat!(
            "[topology]\nside = 15\nr = 1\n",
            "[faults]\nt = 1\nmf = 4\n",
            "[protocol]\nkind = \"starved\"\nm = 4\n",
            "[sweep]\nm = [8, 8]\n",
        ))
        .unwrap();
        let store = Store::in_memory();
        let report = run_file_with(
            &file,
            &BatchOptions {
                jobs: None,
                store: Some(&store),
            },
        )
        .unwrap();
        assert_eq!(report.results.len(), 2);
        assert_eq!(store.len(), 1, "identical points are content-equal");
        assert_eq!(report.cache_hits + report.cache_misses, 2);
        assert!(report.cache_misses >= 1 && report.cache_hits >= 1);
        assert_eq!(
            report.results[0].outcome, report.results[1].outcome,
            "both rows carry the same outcome"
        );
    }

    #[test]
    fn proven_mode_t_bound_is_a_graceful_error_for_hand_built_points() {
        // Parse rejects this file; a hand-mutated PointSpec must error
        // (not assert) when the engine is built.
        let file = ScenarioFile::parse(concat!(
            "engine = \"agreement\"\n",
            "[topology]\nside = 9\nr = 1\n",
            "[faults]\nt = 1\nmf = 5\n",
            "[source]\nx = 4\ny = 4\n",
            "[agreement]\nmode = \"proven\"\n",
        ))
        .unwrap();
        let mut point = file.points().remove(0);
        point.t = 2;
        let err = match build_engine(file.engine, &point) {
            Err(e) => e,
            Ok(_) => panic!("hand-built point must be rejected"),
        };
        assert!(matches!(err, ScenarioError::Invalid { .. }), "{err}");
    }
}
