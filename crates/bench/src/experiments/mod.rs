//! One module per experiment (see DESIGN.md §6 for the index).

pub mod a1;
pub mod a2;
pub mod a3;
pub mod c1;
pub mod e1;
pub mod f2;
pub mod f9;
pub mod g1;
pub mod g2;
pub mod l1;
pub mod scale;
pub mod t1;
pub mod t2;
pub mod t2b;
pub mod t3;
pub mod t4;
pub mod x1;
pub mod x2;
pub mod x4;
pub mod x5;
pub mod x6;

use bftbcast::prelude::*;

/// A torus sized for radio range `r`: side `mult·(2r+1)` so both the
/// spatial-reuse schedule and the lattice placement apply.
pub(crate) fn torus_side(r: u32, mult: u32) -> u32 {
    (2 * r + 1) * mult
}

/// Standard scenario: lattice placement, source at the origin.
pub(crate) fn lattice_scenario(r: u32, mult: u32, t: u32, mf: u64) -> Scenario {
    let side = torus_side(r, mult);
    Scenario::builder(side, side, r)
        .faults(t, mf)
        .lattice_placement()
        .build()
        .expect("valid scenario")
}

/// Standard impossibility scenario: two stripes isolating a band of the
/// torus (a single stripe does not separate a torus — see DESIGN.md).
pub(crate) fn double_stripe_scenario(r: u32, mult: u32, t: u32, mf: u64) -> Scenario {
    let side = torus_side(r, mult);
    // Stripes at 1/3 and 2/3 of the torus height, far from the source.
    let y_lo = side / 3;
    let y_hi = 2 * side / 3 + r;
    Scenario::builder(side, side, r)
        .faults(t, mf)
        .stripe_placement(&[(y_lo, t, true), (y_hi, t, false)])
        .build()
        .expect("valid scenario")
}

/// The rows strictly inside the band isolated by
/// [`double_stripe_scenario`].
pub(crate) fn band_rows(r: u32, mult: u32) -> std::ops::Range<u32> {
    let side = torus_side(r, mult);
    (side / 3 + r)..(2 * side / 3 + r)
}

pub(crate) fn fmt_f(x: f64) -> String {
    format!("{x:.3}")
}
