//! EXP-A1 — ablation: concerted relay (protocol B) vs isolated effort
//! (Koo baseline).
//!
//! The paper's §3 insight is that *nearby good nodes cooperatively
//! overcome collisions*: each node contributes `m' ≈ 2·m0` copies and a
//! receiver pools ⌈(r(2r+1)−t)/2⌉ suppliers, instead of every node
//! single-handedly out-shouting its neighborhood's worst case with
//! `2·t·mf + 1` copies. This ablation measures the actual messages sent
//! per node to reach full coverage under both designs.

use bftbcast::prelude::*;

use super::{fmt_f, lattice_scenario};

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-A1: messages per node to full coverage — concerted (B) vs isolated (Koo)",
        &[
            "r",
            "t",
            "mf",
            "protocol",
            "coverage",
            "avg copies/node",
            "total good copies",
            "isolated/concerted",
        ],
    );
    for &(r, mult, t, mf) in &[(1u32, 5u32, 1u32, 100u64), (2, 4, 2, 60), (3, 3, 2, 40)] {
        let s = lattice_scenario(r, mult, t, mf);
        let b = s.run_protocol_b(Adversary::PerReceiverOracle);
        let koo = s.run_koo_baseline(Adversary::PerReceiverOracle);
        let ratio = koo.avg_copies_per_good() / b.avg_copies_per_good();
        for (name, out) in [("B (concerted)", &b), ("Koo (isolated)", &koo)] {
            table.row(&[
                r.to_string(),
                t.to_string(),
                mf.to_string(),
                name.to_string(),
                fmt_f(out.coverage()),
                fmt_f(out.avg_copies_per_good()),
                out.good_copies_sent.to_string(),
                fmt_f(ratio),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn concerted_is_substantially_cheaper() {
        let s = lattice_scenario(2, 4, 2, 60);
        let b = s.run_protocol_b(Adversary::PerReceiverOracle);
        let koo = s.run_koo_baseline(Adversary::PerReceiverOracle);
        assert!(b.is_reliable() && koo.is_reliable());
        let ratio = koo.avg_copies_per_good() / b.avg_copies_per_good();
        // Claimed ~ (r(2r+1)-t)/2 = 4: allow engine-level slack.
        assert!(ratio > 2.0, "expected a clear win, got {ratio}");
    }
}
