//! EXP-F9 — Figure 9 / §5 coding scheme: overhead and detection.
//!
//! * Code length `K` vs the paper's bound `k + 2·log k + 2` and the
//!   I-code's `2k` (the paper's comparison in §5): our cascade beats
//!   I-code for every `k ≥ 16` (at `k = 8` the two-bit tail segments
//!   still dominate), and the closed-form bound holds for large `k` but
//!   not small (documented deviations, EXPERIMENTS.md).
//! * Detection: every unidirectional flip set is caught (exhaustive for
//!   small `k`); blind cancellation succeeds at the predicted
//!   `1/(2^L − 1)` rate (Monte Carlo at small `L`).

use bftbcast::coding::frame::{AttackMask, Frame};
use bftbcast::coding::segment::{coded_len, paper_len_bound};
use bftbcast::coding::subbit::{SubbitGroup, SubbitParams};
use bftbcast::prelude::Table;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut overhead = Table::new(
        "EXP-F9: coded length K vs paper bound k+2logk+2 vs I-code 2k",
        &[
            "k",
            "K",
            "paper bound",
            "bound holds",
            "I-code 2k",
            "K < 2k",
        ],
    );
    for k in [8usize, 16, 32, 64, 128, 256, 1024, 4096, 1 << 16] {
        let kk = coded_len(k).expect("k >= 2");
        let bound = paper_len_bound(k);
        overhead.row(&[
            k.to_string(),
            kk.to_string(),
            bound.to_string(),
            (kk <= bound).to_string(),
            (2 * k).to_string(),
            (kk < 2 * k).to_string(),
        ]);
    }

    // Detection of unidirectional tampering: exhaustive for k = 6.
    let mut detect = Table::new(
        "EXP-F9b: unidirectional flip detection (exhaustive, k = 6, all messages x all flip pairs)",
        &["flip set size", "cases", "detected"],
    );
    for flips in 1..=2usize {
        let (cases, detected) = exhaustive_detection(6, flips);
        detect.row(&[flips.to_string(), cases.to_string(), detected.to_string()]);
    }

    // Cancellation probability at small L.
    let mut cancel = Table::new(
        "EXP-F9c: blind cancellation success rate vs model 1/(2^L-1) (60k trials each)",
        &["L", "measured", "model", "paper 2^-L"],
    );
    let mut rng = StdRng::seed_from_u64(99);
    for l in [3usize, 5, 8, 12] {
        let params = SubbitParams::with_length(l);
        let trials = 60_000u32;
        let mask = (1u64 << l) - 1;
        let mut hits = 0u32;
        for _ in 0..trials {
            let g = SubbitGroup::encode_bit(true, params, &mut rng);
            let guess = loop {
                let x = rng.random::<u64>() & mask;
                if x != 0 {
                    break x;
                }
            };
            if !g.xor_attack(guess).decode_bit() {
                hits += 1;
            }
        }
        cancel.row(&[
            l.to_string(),
            format!("{:.5}", f64::from(hits) / f64::from(trials)),
            format!("{:.5}", params.p_cancel()),
            format!("{:.5}", params.paper_p_biterr()),
        ]);
    }

    // End-to-end frame integrity under injection. Injecting signal into
    // a silent (0) group flips the bit and must be detected; injecting
    // into a busy (1) group toggles one hidden sub-bit and is absorbed
    // (the group stays non-empty), which is harmless — either way the
    // payload is never corrupted undetected.
    let mut frames = Table::new(
        "EXP-F9d: single-sub-bit injections (k=32, L=24, 2000 frames):          detected when flipping a 0, absorbed when hitting a 1, never corrupting",
        &["attack", "frames", "detected", "absorbed (no effect)", "undetected corruptions"],
    );
    let params = SubbitParams::with_length(24);
    let payload: Vec<bool> = (0..32).map(|i| i % 5 == 0).collect();
    let mut detected = 0u32;
    let mut absorbed = 0u32;
    let mut corrupted = 0u32;
    let n_frames = 2000;
    for _ in 0..n_frames {
        let f = Frame::data(&payload, params, &mut rng);
        let bit = rng.random_range(0..f.coded_bits());
        let masks = AttackMask::new(f.coded_bits()).inject_one(bit).into_masks();
        match f.attacked(&masks).decode_and_verify(params) {
            Err(_) => detected += 1,
            Ok(d) => {
                if d.payload == payload {
                    absorbed += 1;
                } else {
                    corrupted += 1;
                }
            }
        }
    }
    frames.row(&[
        "inject one sub-bit".into(),
        n_frames.to_string(),
        detected.to_string(),
        absorbed.to_string(),
        corrupted.to_string(),
    ]);

    // The refined cost model the paper defers to future work (section 5's
    // closing paragraph): message length x per-message attack rate.
    let mut cost = Table::new(
        "EXP-F9e: refined cost model (paper's future work) — total sub-bit slots, \
         AUED whole-frame retransmission vs I-code per-bit retransmission (L=8)",
        &[
            "k (flips/attack)",
            "attacks",
            "AUED slots",
            "I-code slots",
            "winner",
            "crossover (attacks)",
        ],
    );
    use bftbcast::coding::cost::{aued_total_slots, crossover_attacks, icode_total_slots};
    for k in [64usize, 256, 1024] {
        // One physical collision can flip anywhere from a single I-code
        // pair (cheap probing) to every pair in the frame (saturation);
        // the winner depends on that, which is the refined model's
        // actual answer.
        for flips in [1u64, (k / 4) as u64, k as u64] {
            let cross = crossover_attacks(k, 8, flips)
                .map(|c| c.to_string())
                .unwrap_or_else(|| "never".into());
            for attacks in [0u64, 1, 16] {
                let a = aued_total_slots(k, 8, attacks);
                let i = icode_total_slots(k, 8, attacks, flips);
                cost.row(&[
                    format!("{k} (f={flips})"),
                    attacks.to_string(),
                    a.to_string(),
                    i.to_string(),
                    if a <= i { "AUED" } else { "I-code" }.to_string(),
                    cross.clone(),
                ]);
            }
        }
    }

    // Reproduction finding 5: the all-zero forgery (see EXPERIMENTS.md).
    let mut forgery = Table::new(
        "EXP-F9f: the all-zero-message forgery (finding 5) — chain attack vs message content",
        &["k", "message", "chain flips", "verdict"],
    );
    {
        use bftbcast::coding::segment::{encode, segment_lengths, verify};
        for k in [8usize, 32, 128] {
            for (name, msg) in [
                ("all-zero", vec![false; k]),
                ("one-hot", {
                    let mut m = vec![false; k];
                    m[0] = true;
                    m
                }),
            ] {
                let coded = encode(&msg).unwrap();
                let lens = segment_lengths(k).unwrap();
                let mut tampered = coded.clone();
                let mut start = 0;
                let mut flips = 0;
                for &len in &lens {
                    if !tampered[start + len - 1] {
                        tampered[start + len - 1] = true;
                        flips += 1;
                    }
                    start += len;
                }
                let verdict = match verify(&tampered, k) {
                    Ok(_) => "FORGED (accepted)",
                    Err(_) => "detected",
                };
                forgery.row(&[
                    k.to_string(),
                    name.to_string(),
                    flips.to_string(),
                    verdict.to_string(),
                ]);
            }
        }
    }

    vec![overhead, detect, cancel, frames, cost, forgery]
}

/// Exhaustively tampers every `k`-bit message's coded form with every
/// unidirectional flip set of the given size; returns `(cases,
/// detected)`.
fn exhaustive_detection(k: usize, flips: usize) -> (u64, u64) {
    use bftbcast::coding::segment::{encode, verify};
    let mut cases = 0u64;
    let mut detected = 0u64;
    for m in 0..(1u32 << k) {
        let msg: Vec<bool> = (0..k).rev().map(|b| (m >> b) & 1 == 1).collect();
        let coded = encode(&msg).expect("k >= 2");
        let zeros: Vec<usize> = (0..coded.len()).filter(|&i| !coded[i]).collect();
        let mut idx = vec![0usize; flips];
        // Iterate all strictly-increasing index tuples.
        fn combos(zeros: &[usize], flips: usize, f: &mut impl FnMut(&[usize])) {
            fn rec(
                zeros: &[usize],
                start: usize,
                cur: &mut Vec<usize>,
                left: usize,
                f: &mut impl FnMut(&[usize]),
            ) {
                if left == 0 {
                    f(cur);
                    return;
                }
                for i in start..zeros.len() {
                    cur.push(zeros[i]);
                    rec(zeros, i + 1, cur, left - 1, f);
                    cur.pop();
                }
            }
            let mut cur = Vec::with_capacity(flips);
            rec(zeros, 0, &mut cur, flips, f);
        }
        combos(&zeros, flips, &mut |set: &[usize]| {
            let mut tampered = coded.clone();
            for &i in set {
                tampered[i] = true;
            }
            cases += 1;
            if verify(&tampered, k).is_err() {
                detected += 1;
            }
        });
        idx.clear();
    }
    (cases, detected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_unidirectional_tampering_detected() {
        for flips in 1..=2usize {
            let (cases, detected) = exhaustive_detection(5, flips);
            assert_eq!(cases, detected, "{flips}-flip sets must all be caught");
        }
    }

    #[test]
    fn code_shorter_than_icode_for_k_at_least_16() {
        for k in [16usize, 64, 256, 1024] {
            assert!(coded_len(k).unwrap() < 2 * k, "k={k}");
        }
    }
}
