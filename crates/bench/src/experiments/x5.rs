//! EXP-X5 — the crash-stop fault model (extension).
//!
//! Bhandari–Vaidya analyze crash-stop faults alongside Byzantine ones;
//! this paper's machinery is all priced for *forgery*. The experiment
//! quantifies both deltas on the paper's own torus:
//!
//! * **budget**: with crash faults only, one correct copy is proof —
//!   per-node budget 1 versus the Byzantine `2·m0`;
//! * **threshold**: crash faults block only by disconnection; the
//!   cheapest barrier (a full stripe of height `r`) needs `r(2r+1)`
//!   faults per neighborhood — double the Byzantine collision threshold
//!   `½·r(2r+1)` and at the top of the budget-model bound `t < r(2r+1)`.
//!
//! A hybrid table shows both loads at once: a Byzantine lattice at the
//! paper's `t` plus a leaky crash stripe, handled by protocol B at the
//! Byzantine-only budget.

use bftbcast::adversary::{LatticePlacement, Placement};
use bftbcast::prelude::*;
use bftbcast::sim::crash::{
    crash_only_protocol, crash_stripe, crash_threshold, CrashBehavior, HybridSim,
};

use super::torus_side;

/// Coverage of a crash-only run with two stripes of height `h`.
fn stripe_run(r: u32, mult: u32, h: u32) -> CountingOutcome {
    let side = torus_side(r, mult);
    let grid = Grid::new(side, side, r).expect("valid grid");
    let mut dead = crash_stripe(&grid, side / 3, h);
    dead.extend(crash_stripe(&grid, 2 * side / 3 + r, h));
    dead.sort_unstable();
    dead.dedup();
    let proto = crash_only_protocol(&grid);
    let mut sim = HybridSim::new(grid, proto, 0).with_crash_nodes(&dead, CrashBehavior::Immediate);
    sim.run(0)
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut thresholds = Table::new(
        "EXP-X5a: crash vs Byzantine — tolerable faults per neighborhood and per-node budget",
        &[
            "r",
            "crash t* = r(2r+1)",
            "byz t* (collision, Koo) = ceil(r(2r+1)/2)",
            "crash budget",
            "byz budget 2m0 (t=1, mf=100)",
        ],
    );
    for r in 1..=4u32 {
        let p = Params::new(r, 1, 100);
        thresholds.row(&[
            r.to_string(),
            crash_threshold(r).to_string(),
            reactive_max_t(r).to_string(),
            "1".to_string(),
            p.sufficient_budget().to_string(),
        ]);
    }

    let mut stripes = Table::new(
        "EXP-X5b: crash stripes — height r-1 leaks, height r disconnects (budget 1 everywhere)",
        &["r", "torus", "stripe h", "coverage", "complete"],
    );
    for &(r, mult) in &[(1u32, 5u32), (2, 4), (3, 3)] {
        let mut heights = vec![r.saturating_sub(1).max(1), r, r + 1];
        heights.dedup();
        for h in heights {
            let out = stripe_run(r, mult, h);
            let side = torus_side(r, mult);
            stripes.row(&[
                r.to_string(),
                format!("{side}x{side}"),
                h.to_string(),
                format!("{:.3}", out.coverage()),
                out.is_complete().to_string(),
            ]);
        }
    }

    let mut hybrid = Table::new(
        "EXP-X5c: hybrid load — Byzantine lattice (t, mf) + leaky crash stripe, protocol B at 2m0",
        &[
            "r",
            "t",
            "mf",
            "crash faults",
            "byz faults",
            "coverage",
            "correct",
        ],
    );
    for &(r, mult, t, mf) in &[(2u32, 4u32, 1u32, 20u64), (2, 4, 2, 10), (3, 3, 1, 50)] {
        let side = torus_side(r, mult);
        let grid = Grid::new(side, side, r).expect("valid grid");
        let p = Params::new(r, t, mf);
        let byz: Vec<NodeId> = LatticePlacement::new(t)
            .bad_nodes(&grid)
            .into_iter()
            .filter(|&u| u != 0)
            .collect();
        let dead: Vec<NodeId> = crash_stripe(&grid, side / 2, r.saturating_sub(1).max(1))
            .into_iter()
            .filter(|u| !byz.contains(u) && *u != 0)
            .collect();
        let proto = CountingProtocol::protocol_b(&grid, p);
        let mut sim = HybridSim::new(grid, proto, 0)
            .with_byzantine_nodes(&byz)
            .with_crash_nodes(&dead, CrashBehavior::Immediate);
        let out = sim.run(mf);
        hybrid.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            dead.len().to_string(),
            byz.len().to_string(),
            format!("{:.3}", out.coverage()),
            out.is_correct().to_string(),
        ]);
    }

    vec![thresholds, stripes, hybrid]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_height_r_blocks_and_r_minus_1_leaks() {
        for &(r, mult) in &[(2u32, 4u32), (3, 3)] {
            let leak = stripe_run(r, mult, r - 1);
            assert!(leak.is_complete(), "r={r}: h=r-1 must leak");
            let block = stripe_run(r, mult, r);
            assert!(!block.is_complete(), "r={r}: h=r must disconnect");
            assert!(block.is_correct(), "crash faults never forge");
        }
    }

    #[test]
    fn r1_stripe_of_height_1_blocks() {
        // At r = 1 the minimal barrier is a single row.
        let out = stripe_run(1, 5, 1);
        assert!(!out.is_complete());
    }

    #[test]
    fn hybrid_rows_all_complete_and_correct() {
        for table in run() {
            if table.title().contains("X5c") {
                for row in table.rows() {
                    assert_eq!(row[5], "1.000", "hybrid coverage: {row:?}");
                    assert_eq!(row[6], "true");
                }
            }
        }
    }
}
