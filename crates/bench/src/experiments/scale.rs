//! EXP-SCALE — the frontier kernel on million-cell grids.
//!
//! Sweeps the torus side 100 → 4096 (`r = 1`, protocol B, one isolated
//! bad node roughly every 103 cells so no neighborhood ever exceeds
//! `t = 1`) through the counting engine's per-receiver oracle in
//! [`ScanMode::Frontier`], timing the full broadcast. Dense full-scan
//! timings are collected up to a cutoff side — the legacy kernel's
//! `O(n · waves)` cost makes larger sides pointless — and wherever both
//! kernels run their outcomes are asserted identical.
//!
//! A second table samples per-wave frontier size against per-wave step
//! time at one mid-sweep side: the step cost tracks the frontier (which
//! grows to the torus midline and shrinks back), not the grid.
//!
//! Env knobs (the CI smoke run caps both):
//! * `BFTBCAST_SCALE_MAX` — skip sides above this (default 4096).
//! * `BFTBCAST_SCALE_DENSE_MAX` — dense-timing cutoff (default 1024).

use bftbcast::net::ScanMode;
use bftbcast::prelude::*;
use bftbcast::sim::CountingSim;
use std::time::Instant;

/// Swept torus sides (~10k cells → ~16.7M cells).
pub const SIDES: &[u32] = &[100, 256, 512, 1024, 2048, 4096];

/// Bad-node spacing. 103 is prime and, for every swept side, no two
/// ids 103 apart land in one `3×3` neighborhood (the in-neighborhood id
/// deltas `a·side + b`, `a ∈ 0..=2`, `|b| ≤ 2`, miss every multiple of
/// 103), so the `t = 1` local bound holds and broadcast completes.
const BAD_SPACING: usize = 103;

fn env_u32(name: &str, default: u32) -> u32 {
    std::env::var(name)
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

/// The sweep's simulation at one side, plus the oracle capacity `mf`.
pub fn build_sim(side: u32) -> (CountingSim, u64) {
    let grid = Grid::new(side, side, 1).expect("valid grid");
    let n = grid.node_count();
    let p = Params::new(1, 1, 4);
    let proto = CountingProtocol::protocol_b(&grid, p);
    let bad: Vec<NodeId> = (0..n).skip(7).step_by(BAD_SPACING).collect();
    (CountingSim::new(grid, proto, 0, &bad, p.mf), p.mf)
}

fn run_timed(side: u32, mode: ScanMode) -> (f64, CountingOutcome) {
    let (mut sim, mf) = build_sim(side);
    sim.set_scan_mode(mode);
    let start = Instant::now();
    let mut run = sim.begin_oracle(mf);
    while sim.step_oracle(&mut run) {}
    let ms = start.elapsed().as_secs_f64() * 1e3;
    (ms, sim.outcome())
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let max_side = env_u32("BFTBCAST_SCALE_MAX", 4096);
    let dense_max = env_u32("BFTBCAST_SCALE_DENSE_MAX", 1024);

    let mut sweep = Table::new(
        "EXP-SCALE: full-broadcast wall time, frontier vs dense oracle kernel \
         (r=1, protocol B, t=1 lattice-free sparse adversary)",
        &[
            "side",
            "nodes",
            "waves",
            "frontier_ms",
            "dense_ms",
            "speedup",
        ],
    );
    for &side in SIDES {
        if side > max_side {
            continue;
        }
        let (frontier_ms, out) = run_timed(side, ScanMode::Frontier);
        let (dense_cell, speedup_cell) = if side <= dense_max {
            let (dense_ms, dense_out) = run_timed(side, ScanMode::Dense);
            assert_eq!(out, dense_out, "kernel divergence at side {side}");
            (
                format!("{dense_ms:.3}"),
                format!("{:.1}", dense_ms / frontier_ms),
            )
        } else {
            ("-".into(), "-".into())
        };
        sweep.row(&[
            side.to_string(),
            (side as u64 * side as u64).to_string(),
            out.waves.to_string(),
            format!("{frontier_ms:.3}"),
            dense_cell,
            speedup_cell,
        ]);
    }

    // Per-wave instrumentation at one mid-sweep side: step cost tracks
    // the frontier through its grow/shrink cycle.
    let probe_side = 512.min(max_side);
    let (mut sim, mf) = build_sim(probe_side);
    sim.set_scan_mode(ScanMode::Frontier);
    let mut run = sim.begin_oracle(mf);
    let mut waves: Vec<(usize, usize, f64)> = Vec::new();
    loop {
        let front = run.front_size();
        let start = Instant::now();
        if !sim.step_oracle(&mut run) {
            break;
        }
        waves.push((waves.len() + 1, front, start.elapsed().as_secs_f64() * 1e6));
    }
    let mut per_wave = Table::new(
        format!(
            "EXP-SCALE-WAVES: sampled per-wave frontier size vs step time \
             ({probe_side}x{probe_side}, frontier kernel)"
        ),
        &["wave", "front_senders", "step_us"],
    );
    let stride = (waves.len() / 12).max(1);
    for (wave, front, us) in waves.iter().step_by(stride) {
        per_wave.row(&[wave.to_string(), front.to_string(), format!("{us:.1}")]);
    }

    vec![sweep, per_wave]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernels_agree_at_a_small_side() {
        let (frontier_ms, a) = run_timed(100, ScanMode::Frontier);
        let (_, b) = run_timed(100, ScanMode::Dense);
        assert!(frontier_ms >= 0.0);
        assert_eq!(a, b);
        // The sparse adversary never violates t=1, so protocol B
        // completes the broadcast.
        assert_eq!(a.accepted_true, a.good_nodes);
    }
}
