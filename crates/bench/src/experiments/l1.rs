//! EXP-L1 — broadcast latency profiles.
//!
//! The paper proves *whether* broadcast completes; a deployment also
//! cares *when*. On the counting engine one wave is one protocol step
//! (every newly-accepted node relays once), so waves-to-completion is
//! the natural latency unit; without an adversary it equals the L∞
//! eccentricity of the source, and the interesting question is how much
//! the oracle adversary can stretch it. On the slot engine (Breactive)
//! the unit is TDMA message rounds, where NACK-driven retransmission
//! pays real time for reliability.

use bftbcast::prelude::*;

use super::{lattice_scenario, torus_side};

/// Waves to completion for a protocol/adversary pair, or `None` if the
/// run stalls.
fn waves(s: &Scenario, proto: CountingProtocol, oracle: bool) -> Option<usize> {
    let mut sim = s.counting_sim(proto);
    let out = if oracle {
        sim.run_oracle(s.params().mf)
    } else {
        let mut passive = bftbcast::adversary::Passive;
        sim.run(&mut passive)
    };
    out.is_complete().then_some(out.waves)
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-L1: waves to full coverage (counting engine; eccentricity = ideal)",
        &[
            "r",
            "t",
            "mf",
            "torus",
            "eccentricity",
            "B passive",
            "B oracle",
            "Koo oracle",
            "Bheter oracle",
        ],
    );
    for &(r, mult, t, mf) in &[
        (1u32, 5u32, 1u32, 4u64),
        (2, 4, 1, 20),
        (2, 4, 3, 10),
        (3, 3, 2, 40),
        (4, 3, 1, 100),
    ] {
        let s = lattice_scenario(r, mult, t, mf);
        let p = s.params();
        let side = torus_side(r, mult);
        // Source at the origin of a torus: farthest node is at L∞
        // distance side/2, reached in ceil((side/2)/r) hops.
        let ecc = (side / 2).div_ceil(r);
        let b = CountingProtocol::protocol_b(s.grid(), p);
        let koo = CountingProtocol::koo_baseline(s.grid(), p);
        let cross = Cross::paper_scale(0, 0, r);
        let heter = CountingProtocol::heterogeneous(s.grid(), p, &cross);
        let fmt = |w: Option<usize>| w.map_or("stall".into(), |w| w.to_string());
        table.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            format!("{side}x{side}"),
            ecc.to_string(),
            fmt(waves(&s, b.clone(), false)),
            fmt(waves(&s, b, true)),
            fmt(waves(&s, koo, true)),
            fmt(waves(&s, heter, true)),
        ]);
    }

    let mut reactive = Table::new(
        "EXP-L1b: Breactive rounds to completion (slot engine, mixed adversary, 5 seeds)",
        &["r", "t", "torus", "jamming", "min rounds", "max rounds"],
    );
    for &(r, t, jam) in &[
        (1u32, 1u32, false),
        (1, 1, true),
        (2, 2, false),
        (2, 2, true),
    ] {
        let side = torus_side(r, 3);
        let s = Scenario::builder(side, side, r)
            .faults(t, 3)
            .random_placement(2 * t as usize, 7)
            .build()
            .expect("valid scenario");
        let adversary = if jam {
            ReactiveAdversary::Jammer
        } else {
            ReactiveAdversary::Passive
        };
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for seed in 0..5u64 {
            let out = s.run_reactive(16, 1 << 10, adversary, seed);
            assert!(out.is_reliable(), "reactive run failed");
            lo = lo.min(out.rounds);
            hi = hi.max(out.rounds);
        }
        reactive.row(&[
            r.to_string(),
            t.to_string(),
            format!("{side}x{side}"),
            jam.to_string(),
            lo.to_string(),
            hi.to_string(),
        ]);
    }

    vec![table, reactive]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn passive_latency_bracketed_by_eccentricity() {
        // Eccentricity is a hard lower bound; the threshold rule makes
        // diagonal-corner nodes accumulate tallies over a couple of
        // waves, so even the passive run exceeds it — by at most 2x.
        let s = lattice_scenario(2, 4, 1, 20);
        let p = s.params();
        let proto = CountingProtocol::protocol_b(s.grid(), p);
        let side = torus_side(2, 4);
        let ecc = (side / 2).div_ceil(2) as usize;
        let w = waves(&s, proto, false).unwrap();
        assert!(w >= ecc, "{w} < eccentricity {ecc}");
        assert!(w <= 2 * ecc, "{w} > 2x eccentricity {ecc}");
    }

    #[test]
    fn single_relayer_quota_makes_waves_equal_distance() {
        // At r = 1, t = 1, mf = 4 the relay quota (9) exceeds the
        // threshold (5), so one relayer suffices and the wave index
        // equals L-infinity distance exactly.
        // (Bad nodes never relay, so paths detour around the lattice:
        // allow one extra wave over the empty-torus eccentricity.)
        let s = lattice_scenario(1, 5, 1, 4);
        let p = s.params();
        let proto = CountingProtocol::protocol_b(s.grid(), p);
        let side = torus_side(1, 5);
        let ecc = (side / 2) as usize;
        let w = waves(&s, proto, false).unwrap();
        assert!(w == ecc || w == ecc + 1, "{w} vs eccentricity {ecc}");
    }

    #[test]
    fn oracle_stretches_latency_but_not_by_much() {
        // The oracle delays acceptances near the frontier corners, but
        // protocol B's margins keep the stretch within 2x.
        let s = lattice_scenario(2, 4, 1, 20);
        let p = s.params();
        let proto = CountingProtocol::protocol_b(s.grid(), p);
        let passive = waves(&s, proto.clone(), false).unwrap();
        let attacked = waves(&s, proto, true).unwrap();
        assert!(attacked >= passive);
        assert!(attacked <= 2 * passive, "{attacked} vs {passive}");
    }
}
