//! EXP-G1 — Lemmas 5–9 (Figures 6–8): committed-line geometry, verified
//! with exact rational arithmetic.

use bftbcast::geometry::committed::CommittedLine;
use bftbcast::geometry::expanding::{lemma9_sweep, LEMMA9_UNITS};
use bftbcast::geometry::point::Pt;
use bftbcast::prelude::Table;

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut frontier = Table::new(
        "EXP-G1: frontier metric bounds (Lemmas 6-8), exact check over all rho, l in 4..64",
        &["r", "inset (lemma)", "cases", "bound holds"],
    );
    for r in 1..=8i128 {
        for (inset, lemma) in [(1, "6: committed"), (2, "7: shifted"), (3, "8: float")] {
            let mut cases = 0u32;
            let mut all = true;
            for rho in -r..=0 {
                for l in (2 * inset + 1)..64 {
                    let cl = CommittedLine::new(r, rho, Pt::int(0, 0), l);
                    cases += 1;
                    all &= cl.frontier_bound_holds(inset);
                }
            }
            frontier.row(&[
                r.to_string(),
                lemma.to_string(),
                cases.to_string(),
                all.to_string(),
            ]);
        }
    }

    let mut lemma9 = Table::new(
        "EXP-G1b: Lemma 9 clearance d > 1.25 (exact, 37-unit float committed lines, \
         32 slope samples per interval)",
        &[
            "r",
            "slope intervals",
            "min clearance",
            "d > 1.25 everywhere",
        ],
    );
    for r in 2..=12i128 {
        let (min_d, ok) = lemma9_sweep(r, 32);
        lemma9.row(&[
            r.to_string(),
            format!("{}", r - 1 + 1),
            format!("{min_d:.4}"),
            ok.to_string(),
        ]);
    }
    let _ = LEMMA9_UNITS;
    vec![frontier, lemma9]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_geometry_bounds_hold() {
        for table in run() {
            assert!(
                !table.to_string().contains("false"),
                "a geometric bound failed:\n{table}"
            );
        }
    }
}
