//! EXP-T4 — Theorem 4: protocol Breactive with unknown `mf`.
//!
//! Full slot-engine runs: coded frames, NACK-driven retransmission,
//! certified propagation. Sweeps `t` up to the `½r(2r+1)` threshold and
//! the adversary arsenal; reports the measured worst per-node cost in
//! sub-bit slots against Theorem 4's closed-form budget, and the
//! empirical reliability against the `1 − 1/n` target.

use bftbcast::prelude::*;

use super::{fmt_f, torus_side};

fn reactive_scenario(r: u32, mult: u32, t: u32, mf: u64, seed: u64) -> Scenario {
    let side = torus_side(r, mult);
    // Enough bad nodes to exercise t per neighborhood without violating
    // the bound.
    let want = (side as usize * side as usize) / 12;
    Scenario::builder(side, side, r)
        .faults(t, mf)
        .random_placement(want, seed)
        .build()
        .expect("valid scenario")
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-T4: Breactive (slot engine, k=16, mmax=2^16) — cost vs Theorem 4 budget",
        &[
            "r",
            "t",
            "mf",
            "adversary",
            "reliable",
            "rounds",
            "max msgs/node",
            "max subbits/node",
            "thm4 budget",
            "within budget",
        ],
    );
    let mmax = 1u64 << 16;
    let k = 16u64;
    let points: &[(u32, u32, u32, u64)] =
        &[(1, 5, 1, 4), (1, 5, 1, 12), (2, 3, 2, 4), (2, 3, 4, 3)];
    for &(r, mult, t, mf) in points {
        assert!(
            u64::from(t) <= reactive_max_t(r),
            "t must stay below r(2r+1)/2"
        );
        for adversary in [
            ReactiveAdversary::Passive,
            ReactiveAdversary::Jammer,
            ReactiveAdversary::NackForger,
            ReactiveAdversary::Mixed,
        ] {
            let s = reactive_scenario(r, mult, t, mf, 1000 + u64::from(r));
            let n = s.grid().node_count() as u64;
            let out = s.run_reactive(k as usize, mmax, adversary, 7);
            let budget = theorem4_budget(n, k, u64::from(t), mf, mmax);
            table.row(&[
                r.to_string(),
                t.to_string(),
                mf.to_string(),
                format!("{adversary:?}"),
                out.is_reliable().to_string(),
                out.rounds.to_string(),
                out.max_node_messages.to_string(),
                out.max_node_subbit_cost().to_string(),
                budget.to_string(),
                (out.max_node_subbit_cost() <= budget).to_string(),
            ]);
        }
    }

    // Reliability across seeds (the 1 - 1/n claim).
    let mut rel = Table::new(
        "EXP-T4b: reliability over 20 seeds (r=1, t=1, mf=8, Mixed adversary)",
        &["seeds", "reliable runs", "undetected corruptions", "target"],
    );
    let seeds: Vec<u64> = (0..20).collect();
    let results = sweep(&seeds, |&seed| {
        let s = reactive_scenario(1, 5, 1, 8, 77);
        s.run_reactive(16, mmax, ReactiveAdversary::Mixed, seed)
    });
    let reliable = results.iter().filter(|o| o.is_reliable()).count();
    let undetected: u64 = results.iter().map(|o| o.undetected_corruptions).sum();
    rel.row(&[
        seeds.len().to_string(),
        reliable.to_string(),
        undetected.to_string(),
        format!("> {}", fmt_f(1.0 - 1.0 / 225.0)),
    ]);
    vec![table, rel]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reactive_reliable_and_within_budget() {
        let s = reactive_scenario(1, 5, 1, 4, 1001);
        let out = s.run_reactive(16, 1 << 16, ReactiveAdversary::Jammer, 3);
        assert!(out.is_reliable(), "uncommitted: {:?}", out.uncommitted);
        let budget = theorem4_budget(225, 16, 1, 4, 1 << 16);
        assert!(
            out.max_node_subbit_cost() <= budget,
            "{} > {budget}",
            out.max_node_subbit_cost()
        );
    }

    #[test]
    fn reliability_across_seeds() {
        for seed in 0..5u64 {
            let s = reactive_scenario(1, 5, 1, 6, 88);
            let out = s.run_reactive(16, 1 << 16, ReactiveAdversary::Mixed, seed);
            assert!(out.is_reliable(), "seed {seed}: {:?}", out.uncommitted);
        }
    }
}
