//! EXP-T2 — Theorem 2: `m = 2·m0` achieves reliable broadcast.
//!
//! Protocol B across a `(r, t, mf)` sweep, against every adversary in
//! the arsenal — including the per-receiver oracle the theorem is
//! actually proved against. Completeness and correctness must hold at
//! every point.

use bftbcast::prelude::*;

use super::{fmt_f, lattice_scenario};

/// Sweep points: `(r, mult, t, mf)`.
const POINTS: &[(u32, u32, u32, u64)] = &[
    (1, 5, 1, 10),
    (1, 5, 2, 100),
    (2, 4, 1, 50),
    (2, 4, 4, 30),
    (2, 4, 9, 20),
    (3, 3, 2, 25),
    (4, 2, 1, 1000),
];

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-T2: protocol B at m = 2*m0 (Theorem 2) — must be reliable everywhere",
        &[
            "r",
            "t",
            "mf",
            "m0",
            "m=2m0",
            "adversary",
            "coverage",
            "correct",
            "adv spent",
        ],
    );
    for &(r, mult, t, mf) in POINTS {
        let s = lattice_scenario(r, mult, t, mf);
        for adv in [
            Adversary::Passive,
            Adversary::Greedy,
            Adversary::Chaos(17),
            Adversary::PerReceiverOracle,
        ] {
            let out = s.run_protocol_b(adv);
            table.row(&[
                r.to_string(),
                t.to_string(),
                mf.to_string(),
                s.params().m0().to_string(),
                s.params().sufficient_budget().to_string(),
                format!("{adv:?}"),
                fmt_f(out.coverage()),
                out.is_correct().to_string(),
                out.adversary_spent.to_string(),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn theorem2_holds_at_every_sweep_point() {
        for &(r, mult, t, mf) in POINTS {
            let s = lattice_scenario(r, mult, t, mf);
            for adv in [
                Adversary::Greedy,
                Adversary::PerReceiverOracle,
                Adversary::Chaos(5),
            ] {
                let out = s.run_protocol_b(adv);
                assert!(
                    out.is_reliable(),
                    "r={r} mult={mult} t={t} mf={mf} {adv:?}: coverage {}",
                    out.coverage()
                );
            }
        }
    }
}
