//! EXP-X2 — the physical-adversary gap, quantified per strategy.
//!
//! Finding 1 (EXPERIMENTS.md) observes that the paper's proofs charge a
//! corruption capacity `t·mf` at *every* receiver simultaneously, which
//! a physically-budgeted adversary cannot realize. This experiment pins
//! the gap down: for each physical strategy — nearest-greedy,
//! forward-sharing greedy, the corner hunter (targeting the paper's §2
//! "weakest" nodes first), and the best of 16 chaos seeds — find the
//! largest per-node budget `m` it can still stall, and compare with the
//! per-receiver oracle's (the `m0 − 1` of Theorem 1).
//!
//! Reading: the physical threshold sits well below `m0` — the oracle
//! stalls budgets 1.3–2× larger than the best physical strategy we
//! could build, and among physical strategies the forward-sharing
//! greedy dominates (collision side-effects are the scarce resource).

use bftbcast::adversary::{Chaos, CorruptionStrategy, GreedyFrontier};
use bftbcast::prelude::*;

use super::double_stripe_scenario;

/// Largest `m` in `[1, hi]` the strategy factory stalls, if any.
fn max_stalled<F, S>(s: &Scenario, hi: u64, mut make: F) -> Option<u64>
where
    F: FnMut() -> S,
    S: CorruptionStrategy,
{
    (1..=hi).rev().find(|&m| {
        let proto = CountingProtocol::starved(s.grid(), s.params(), m);
        let mut sim = s.counting_sim(proto);
        !sim.run(&mut make()).is_complete()
    })
}

/// Largest `m` the oracle stalls, if any.
fn max_stalled_oracle(s: &Scenario, hi: u64) -> Option<u64> {
    (1..=hi).rev().find(|&m| {
        let proto = CountingProtocol::starved(s.grid(), s.params(), m);
        let mut sim = s.counting_sim(proto);
        !sim.run_oracle(s.params().mf).is_complete()
    })
}

/// Best chaos result across seeds.
fn max_stalled_chaos(s: &Scenario, hi: u64, seeds: u64) -> Option<u64> {
    (0..seeds)
        .filter_map(|seed| max_stalled(s, hi, || Chaos::new(seed)))
        .max()
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-X2: largest per-node budget m stalled, physical strategies vs the per-receiver oracle \
         (double-stripe scenario; oracle = m0 - 1 exactly)",
        &[
            "r",
            "t",
            "mf",
            "m0",
            "oracle",
            "greedy-nearest",
            "greedy-forward",
            "corner-hunter",
            "chaos best/16",
            "gap (oracle/phys best)",
        ],
    );
    for &(r, mult, t, mf) in &[
        (1u32, 5u32, 1u32, 20u64),
        (2, 4, 1, 50),
        (2, 4, 3, 40),
        (3, 3, 2, 60),
    ] {
        let s = double_stripe_scenario(r, mult, t, mf);
        let hi = s.params().sufficient_budget() - 1;
        let oracle = max_stalled_oracle(&s, hi);
        let nearest = max_stalled(&s, hi, GreedyFrontier::default);
        let forward = max_stalled(&s, hi, GreedyFrontier::forward);
        let corners = max_stalled(&s, hi, GreedyFrontier::corners);
        let chaos = max_stalled_chaos(&s, hi, 16);
        let phys_best = nearest
            .unwrap_or(0)
            .max(forward.unwrap_or(0))
            .max(corners.unwrap_or(0))
            .max(chaos.unwrap_or(0));
        let fmt = |m: Option<u64>| m.map_or("-".into(), |m| m.to_string());
        table.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            s.params().m0().to_string(),
            fmt(oracle),
            fmt(nearest),
            fmt(forward),
            fmt(corners),
            fmt(chaos),
            if phys_best == 0 {
                "-".into()
            } else {
                format!("{:.2}x", oracle.unwrap_or(0) as f64 / phys_best as f64)
            },
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_stalls_exactly_m0_minus_1() {
        let s = double_stripe_scenario(2, 4, 1, 50);
        let hi = s.params().sufficient_budget() - 1;
        assert_eq!(max_stalled_oracle(&s, hi), Some(s.params().m0() - 1));
    }

    #[test]
    fn oracle_dominates_every_physical_strategy() {
        let s = double_stripe_scenario(2, 4, 1, 50);
        let hi = s.params().sufficient_budget() - 1;
        let oracle = max_stalled_oracle(&s, hi).unwrap();
        for (name, phys) in [
            ("nearest", max_stalled(&s, hi, GreedyFrontier::default)),
            ("forward", max_stalled(&s, hi, GreedyFrontier::forward)),
            ("corners", max_stalled(&s, hi, GreedyFrontier::corners)),
        ] {
            assert!(
                phys.unwrap_or(0) <= oracle,
                "{name} beat the oracle: {phys:?} vs {oracle}"
            );
        }
    }

    #[test]
    fn corner_hunter_is_a_real_adversary() {
        // It must stall at least the trivial budgets the other greedies
        // stall (they all beat chaos).
        let s = double_stripe_scenario(2, 4, 1, 50);
        let hi = s.params().sufficient_budget() - 1;
        let corners = max_stalled(&s, hi, GreedyFrontier::corners);
        let chaos = max_stalled_chaos(&s, hi, 8);
        assert!(corners.unwrap_or(0) >= chaos.unwrap_or(0));
    }
}
