//! EXP-X4 — source-neighborhood agreement under a faulty base station
//! (the case the paper defers to \[14\], §1.2).
//!
//! Two modes are measured over a grid of colluder capacity schedules
//! (121 attack points per configuration):
//!
//! * the **cheap** three-phase propose/echo/confirm protocol — validity
//!   always holds; agreement holds on most of the sweep but a window of
//!   schedules splits the neighborhood by suppressing marginal conflict
//!   evidence (a finding of this reproduction);
//! * the **proven** vector mode — agreement is deterministic (margin
//!   `t + 1` plurality over consistently-delivered proposal vectors) at
//!   a `Θ((2r+1)²)` message-cost multiplier.
//!
//! Declarative port: `scenarios/x4.scn` sweeps the same 121 capacity
//! schedules at the `(r, t, mf) = (2, 1, 10)` point.

use bftbcast::net::{Grid, NodeId, Value};
use bftbcast::prelude::{Params, Table};
use bftbcast::protocols::agreement::{proven_max_t, proven_member_cost, AgreementConfig};
use bftbcast::sim::agreement::{AgreementSim, SourceBehavior, SplitAttack};

/// Builds the standard EXP-X4 instance: centered source, `t` colluders
/// in a row just above it.
pub fn instance(r: u32, t: u32, mf: u64) -> AgreementSim {
    let side = 6 * r + 3;
    let grid = Grid::new(side, side, r).expect("valid grid");
    let c = side / 2;
    let source = grid.id_at(c, c);
    let bad: Vec<NodeId> = (0..t)
        .map(|i| {
            let w = grid.wrap(i64::from(c) + i64::from(i) - 1, i64::from(c) + 1);
            grid.id_of(w)
        })
        .collect();
    let cfg = AgreementConfig::paper_margins(Params::new(r, t, mf));
    AgreementSim::new(grid, cfg, source, &bad)
}

/// The 11×11 grid of capacity schedules used throughout.
pub fn attack_schedules() -> Vec<SplitAttack> {
    let mut out = Vec::new();
    for p1 in 0..=10 {
        for pe in 0..=10 {
            out.push(SplitAttack {
                value_a: Value(2),
                value_b: Value(3),
                phase1_fraction: f64::from(p1) / 10.0,
                echo_fraction: f64::from(pe) / 10.0,
            });
        }
    }
    out
}

/// Sweep one configuration; returns (cheap splits, proven splits,
/// validity failures, total schedules).
pub fn sweep_point(r: u32, t: u32, mf: u64) -> (usize, usize, usize, usize) {
    let base = instance(r, t, mf);
    let cfg = AgreementConfig::paper_margins(Params::new(r, t, mf));
    let mut cheap_splits = 0;
    let mut proven_splits = 0;
    let mut validity_failures = 0;
    let schedules = attack_schedules();
    for attack in &schedules {
        let mut sim = base.clone();
        let split = SourceBehavior::even_split(&cfg, Value(2), Value(3));
        if !sim.run(split.clone(), *attack).agreement_holds() {
            cheap_splits += 1;
        }
        let mut sim = base.clone();
        if !sim.run_proven(split, *attack).agreement_holds() {
            proven_splits += 1;
        }
        let mut sim = base.clone();
        if !sim.run(SourceBehavior::Correct, *attack).validity_holds() {
            validity_failures += 1;
        }
    }
    (
        cheap_splits,
        proven_splits,
        validity_failures,
        schedules.len(),
    )
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut costs = Table::new(
        "EXP-X4a: agreement margins and per-member costs",
        &[
            "r",
            "t",
            "mf",
            "source copies",
            "echo quota",
            "relay quota (Thm 2)",
            "cheap cost",
            "proven cost",
            "proven t max",
        ],
    );
    for &(r, t, mf) in &[
        (1u32, 1u32, 5u64),
        (2, 1, 10),
        (2, 2, 20),
        (3, 2, 50),
        (4, 1, 1000),
    ] {
        let p = Params::new(r, t, mf);
        let cfg = AgreementConfig::paper_margins(p);
        costs.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            cfg.source_copies.to_string(),
            cfg.echo_quota.to_string(),
            p.relay_quota().to_string(),
            cfg.member_cost().to_string(),
            proven_member_cost(p).to_string(),
            proven_max_t(r).to_string(),
        ]);
    }

    let mut sweep = Table::new(
        "EXP-X4b: equivocation sweep — 121 colluder schedules per row, even-split source",
        &[
            "r",
            "t",
            "mf",
            "cheap splits",
            "proven splits",
            "validity failures",
        ],
    );
    for &(r, t, mf) in &[
        (1u32, 1u32, 5u64),
        (2, 1, 10),
        (2, 1, 20),
        (2, 2, 20),
        (3, 2, 50),
    ] {
        let (cheap, proven, validity, total) = sweep_point(r, t, mf);
        sweep.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            format!("{cheap}/{total}"),
            format!("{proven}/{total}"),
            format!("{validity}/{total}"),
        ]);
    }

    vec![costs, sweep]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn proven_mode_never_splits_and_validity_always_holds() {
        for &(r, t, mf) in &[(1u32, 1u32, 5u64), (2, 1, 10), (2, 2, 20)] {
            let (_, proven, validity, _) = sweep_point(r, t, mf);
            assert_eq!(proven, 0, "r={r} t={t} mf={mf}");
            assert_eq!(validity, 0, "r={r} t={t} mf={mf}");
        }
    }

    #[test]
    fn cheap_mode_split_window_exists_at_r2() {
        let (cheap, _, _, total) = sweep_point(2, 1, 10);
        assert!(cheap > 0, "the split window is a documented finding");
        assert!(cheap < total / 2, "splits are a minority of schedules");
    }

    #[test]
    fn r1_is_unsplittable_even_in_cheap_mode() {
        let (cheap, _, _, _) = sweep_point(1, 1, 5);
        assert_eq!(cheap, 0);
    }
}
