//! EXP-C1 — Corollary 1: tolerable-`t` thresholds for given `(m, mf)`.
//!
//! `t > (m·r(2r+1) − 1)/(2mf + m)` defeats broadcast;
//! `t ≤ (m·r(2r+1) − 2)/(4mf + m)` is tolerable. The sweep verifies both
//! directions against the double-stripe oracle (impossibility) and the
//! starved protocol under the oracle (possibility), and exposes the gap
//! region between the two bounds the paper leaves open.

use bftbcast::prelude::*;

use super::{band_rows, double_stripe_scenario, fmt_f};

fn run_point(r: u32, mult: u32, t: u32, mf: u64, m: u64) -> (f64, bool) {
    let s = double_stripe_scenario(r, mult, t, mf);
    let proto = CountingProtocol::starved(s.grid(), s.params(), m);
    let mut sim = s.counting_sim(proto);
    let out = sim.run_oracle(mf);
    let grid = s.grid();
    let mut starved = true;
    for y in band_rows(r, mult) {
        for x in 0..grid.width() {
            let id = grid.id_at(x, y);
            if sim.is_good(id) && sim.accepted(id).is_some() {
                starved = false;
            }
        }
    }
    (out.coverage(), starved)
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-C1: Corollary 1 thresholds (r=2, mf=40, m=40): double-stripe oracle vs t",
        &[
            "t",
            "corollary verdict",
            "coverage",
            "band starved",
            "consistent",
        ],
    );
    let (r, mult, mf, m) = (2u32, 4u32, 40u64, 40u64);
    let fail_at = corollary1_min_defeating_t(r, m, mf);
    let ok_up_to = corollary1_max_tolerable_t(r, m, mf);
    let t_max = (r * (2 * r + 1) - 1) as u64;
    for t in 1..=t_max.min(9) {
        let (coverage, starved) = run_point(r, mult, t as u32, mf, m);
        let verdict = if t >= fail_at {
            "defeats"
        } else if t <= ok_up_to {
            "tolerable"
        } else {
            "gap (open in paper)"
        };
        // Consistency: "defeats" must starve; "tolerable" must not.
        let consistent = match verdict {
            "defeats" => starved,
            "tolerable" => !starved,
            _ => true,
        };
        table.row(&[
            t.to_string(),
            verdict.to_string(),
            fmt_f(coverage),
            starved.to_string(),
            consistent.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corollary_directions_verified_by_simulation() {
        let t = run();
        // The last column records consistency with the corollary verdict.
        for row in t[0].rows() {
            assert_eq!(
                row.last().map(String::as_str),
                Some("true"),
                "Corollary 1 contradicted at {row:?}"
            );
        }
    }
}
