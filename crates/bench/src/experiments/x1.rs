//! EXP-X1 — charting the paper's open region `m ∈ (m0, 2m0)`.
//!
//! The paper's conclusion: "the presented results leave an uncertain
//! region of m ∈ (m0, 2m0) for which it is unclear whether the broadcast
//! task is possible. It is therefore of interest to investigate tighter
//! bounds for this problem." This experiment investigates empirically,
//! under the per-receiver oracle (the model of the paper's own proofs):
//! for each adversary family we find the **largest** `m` it can still
//! stall, scanning the whole region.
//!
//! Result (see EXPERIMENTS.md): the known constructions only block a
//! thin band above `m0` — the stripe exactly `m0 − 1`, the Figure 2
//! lattice at most ~12% into the region (64 vs `m0 = 58` at the
//! Figure 2 parameters, against `2m0 = 116`) and nothing at all for
//! small `r` — evidence that the true threshold sits near `m0`, not
//! near `2m0`.

use bftbcast::prelude::*;

use super::{double_stripe_scenario, lattice_scenario};

/// Largest `m` in `[lo, hi]` for which the scenario's oracle run is
/// incomplete, if any (linear scan from the top — the region is small
/// and runs are sub-millisecond).
fn max_stalled_m(s: &Scenario, lo: u64, hi: u64) -> Option<u64> {
    (lo..=hi).rev().find(|&m| {
        let proto = CountingProtocol::starved(s.grid(), s.params(), m);
        let mut sim = s.counting_sim(proto);
        !sim.run_oracle(s.params().mf).is_complete()
    })
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-X1: the open region (m0, 2m0) — largest m each adversary family stalls \
         (per-receiver oracle)",
        &[
            "r",
            "t",
            "mf",
            "m0",
            "2m0",
            "stripe stalls up to",
            "lattice stalls up to",
            "region blocked",
        ],
    );
    // (r, mult, t, mf) — chosen so both families are applicable.
    let points: &[(u32, u32, u32, u64)] = &[
        (2, 4, 1, 50),
        (2, 4, 3, 40),
        (3, 3, 1, 500),
        (4, 3, 1, 1000),
        (4, 3, 2, 600),
    ];
    for &(r, mult, t, mf) in points {
        let stripe = double_stripe_scenario(r, mult, t, mf);
        let lattice = lattice_scenario(r, mult, t, mf);
        let p = stripe.params();
        let (m0, two_m0) = (p.m0(), p.sufficient_budget());
        let stripe_max = max_stalled_m(&stripe, 1, two_m0 - 1);
        let lattice_max = max_stalled_m(&lattice, 1, two_m0 - 1);
        let best = stripe_max.unwrap_or(0).max(lattice_max.unwrap_or(0));
        let blocked_fraction = if best >= m0 && two_m0 > m0 {
            (best - m0 + 1) as f64 / (two_m0 - m0) as f64
        } else {
            0.0
        };
        table.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            m0.to_string(),
            two_m0.to_string(),
            stripe_max.map_or("-".into(), |m| m.to_string()),
            lattice_max.map_or("-".into(), |m| m.to_string()),
            format!("{:.1}%", 100.0 * blocked_fraction),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stripe_stalls_exactly_up_to_m0_minus_1() {
        let s = double_stripe_scenario(2, 4, 1, 50);
        let p = s.params();
        assert_eq!(
            max_stalled_m(&s, 1, p.sufficient_budget()),
            Some(p.m0() - 1)
        );
    }

    #[test]
    fn lattice_blocks_only_a_thin_band_at_figure2_params() {
        let s = lattice_scenario(4, 3, 1, 1000);
        let p = s.params();
        let max = max_stalled_m(&s, 1, p.sufficient_budget() - 1).expect("stalls near m0");
        // Figure 2 blocks m = 59; the band ends shortly after.
        assert!(max >= p.m0(), "must cover at least m0 = {}", p.m0());
        assert!(
            max < p.m0() + p.m0() / 4,
            "the blocked band should be thin: {max} vs m0 {}",
            p.m0()
        );
    }

    #[test]
    fn nothing_in_the_open_region_is_blocked_at_small_r() {
        // At r = 2, t = 1 the lattice cannot block anything at or above
        // m0 (the frontier intake beats 2*t*mf immediately).
        let s = lattice_scenario(2, 4, 1, 50);
        let p = s.params();
        let max = max_stalled_m(&s, p.m0(), p.sufficient_budget() - 1);
        assert_eq!(max, None);
    }
}
