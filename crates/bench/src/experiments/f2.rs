//! EXP-F2 — Figure 2: `m` slightly above `m0` is still insufficient.
//!
//! The paper's exact construction: `r = 4, t = 1, mf = 1000`, so
//! `m0 = ⌈2001/35⌉ = 58`, and `m = m0 + 1 = 59`. One bad node per
//! neighborhood (lattice, offset 41 reproduces the narrative's exact
//! node positions). Under per-receiver accounting broadcast stalls after
//! the source's 9×9 square plus four "gray" nodes; the node `p` at
//! `(5, 1)` has 33 decided neighbors, receives `33·59 = 1947` copies of
//! which 947 are corrupted, leaving `1000 < 1001` — exactly the paper's
//! numbers.
//!
//! Declarative port: `scenarios/f2.scn` (same construction, same
//! goldens, via `bftbcast run --scenario`; round-trip-tested in
//! `tests/tests/scenario_files.rs`).

use bftbcast::prelude::*;

/// The construction's scenario (45×45 torus so the lattice applies).
pub fn scenario() -> Scenario {
    Scenario::builder(45, 45, 4)
        .faults(1, 1000)
        .lattice_placement_with_offset(41)
        .build()
        .expect("valid scenario")
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let s = scenario();
    let p = s.params();
    let grid = s.grid();
    let m = p.m0() + 1;

    let proto = CountingProtocol::starved(grid, p, m);
    let mut sim = s.counting_sim(proto);
    let out = sim.run_oracle(p.mf);

    let mut headline = Table::new(
        "EXP-F2: Figure 2 construction (r=4, t=1, mf=1000, m=m0+1=59), per-receiver oracle",
        &["quantity", "paper", "measured"],
    );
    headline.row(&["m0".into(), "58".into(), p.m0().to_string()]);
    headline.row(&[
        "2tmf+1 (accept needs > tmf wrong-capacity)".into(),
        "2001".into(),
        p.source_quota().to_string(),
    ]);
    headline.row(&["gray node intake (r(2r+1)-t)*m".into(), "2065".into(), {
        let gray = grid.id_of(grid.wrap(0, 5));
        (sim.tally_true(gray) + sim.tally_wrong(gray)).to_string()
    }]);
    let pid = grid.id_of(grid.wrap(5, 1));
    headline.row(&[
        "decided neighbors of p=(5,1)".into(),
        "33".into(),
        sim.decided_neighbors(pid).to_string(),
    ]);
    headline.row(&[
        "copies sent to p".into(),
        "1947".into(),
        (sim.tally_true(pid) + sim.tally_wrong(pid)).to_string(),
    ]);
    headline.row(&[
        "correct copies surviving at p".into(),
        "947".into(),
        // The oracle blocks at exactly threshold-1 = 1000 survivors by
        // corrupting 947; the paper's narrative corrupts the full 1000
        // leaving 947 — same budget, same verdict (947 and 1000 are the
        // two sides of the 1947 split). Report the corrupted count:
        sim.tally_wrong(pid).to_string(),
    ]);
    headline.row(&[
        "p undecided".into(),
        "yes".into(),
        if sim.accepted(pid).is_none() {
            "yes"
        } else {
            "no"
        }
        .to_string(),
    ]);
    headline.row(&[
        "decided nodes at stall (square - 1 bad + 4 gray)".into(),
        "84".into(),
        out.accepted_true.to_string(),
    ]);
    headline.row(&[
        "broadcast fails".into(),
        "yes".into(),
        if out.is_complete() { "no" } else { "yes" }.to_string(),
    ]);

    // The physical-adversary comparison (reproduction finding).
    let proto = CountingProtocol::starved(grid, p, m);
    let mut sim2 = s.counting_sim(proto);
    let out2 = sim2.run(&mut bftbcast::adversary::GreedyFrontier::default());
    let mut physical = Table::new(
        "EXP-F2b: same construction, physical global-budget greedy \
         (finding: budget sharing across victims defeats the construction)",
        &["adversary model", "coverage", "broadcast fails"],
    );
    physical.row(&[
        "per-receiver oracle (paper accounting)".into(),
        format!("{:.3}", out.coverage()),
        "yes".into(),
    ]);
    physical.row(&[
        "global budgets + greedy".into(),
        format!("{:.3}", out2.coverage()),
        if out2.is_complete() { "no" } else { "yes" }.to_string(),
    ]);

    vec![headline, physical]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure2_numbers_reproduce_exactly() {
        let s = scenario();
        let p = s.params();
        assert_eq!(p.m0(), 58);
        let proto = CountingProtocol::starved(s.grid(), p, 59);
        let mut sim = s.counting_sim(proto);
        let out = sim.run_oracle(p.mf);
        assert_eq!(out.accepted_true, 84);
        assert!(!out.is_complete());
        let grid = s.grid();
        let pid = grid.id_of(grid.wrap(5, 1));
        assert_eq!(sim.decided_neighbors(pid), 33);
        assert_eq!(sim.tally_true(pid) + sim.tally_wrong(pid), 1947);
        assert_eq!(sim.tally_wrong(pid), 947);
        assert_eq!(sim.accepted(pid), None);
        let gray = grid.id_of(grid.wrap(0, 5));
        assert_eq!(sim.tally_true(gray), 2065);
    }
}
