//! EXP-A2 — ablation: the reactive quiet window `(2r+1)² − 1`.
//!
//! The paper sets the NACK quiet window to one full TDMA schedule cycle
//! so every neighbor gets a slot to object before the sender stops.
//! Shrinking it risks senders finishing before a victim's NACK slot
//! arrives (incompleteness under attack); growing it only adds latency.

use bftbcast::prelude::*;
use bftbcast::protocols::reactive::ReactiveConfig;
use bftbcast::sim::slot::{SlotConfig, SlotSim};

use super::torus_side;

fn run_with_window(window: u32, seed: u64) -> ReactiveOutcome {
    let r = 1u32;
    let side = torus_side(r, 5);
    let s = Scenario::builder(side, side, r)
        .faults(1, 8)
        .random_placement(18, 4)
        .build()
        .expect("valid scenario");
    let config = SlotConfig {
        reactive: ReactiveConfig::paper(s.grid().node_count(), r, 1, 1 << 16, 16)
            .with_quiet_window(window),
        t: 1,
        mf: 8,
        good_budget: None,
        adversary: ReactiveAdversary::Jammer,
        max_rounds: 2_000_000,
        seed,
    };
    let mut sim = SlotSim::new(s.grid().clone(), s.source(), s.bad_nodes(), config);
    sim.run()
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let r = 1u32;
    let full = (2 * r + 1) * (2 * r + 1) - 1; // the paper's window
    let mut table = Table::new(
        "EXP-A2: quiet-window ablation (r=1, jammer, 5 seeds each)",
        &[
            "window (rounds)",
            "vs paper",
            "reliable runs",
            "avg rounds",
            "avg data tx",
        ],
    );
    for (window, label) in [
        (full / 2, "half"),
        (full, "paper (2r+1)^2-1"),
        (2 * full, "double"),
    ] {
        let seeds: Vec<u64> = (0..5).collect();
        let outs = sweep(&seeds, |&s| run_with_window(window, s));
        let reliable = outs.iter().filter(|o| o.is_reliable()).count();
        let avg_rounds = outs.iter().map(|o| o.rounds).sum::<u64>() as f64 / outs.len() as f64;
        let avg_tx =
            outs.iter().map(|o| o.data_transmissions).sum::<u64>() as f64 / outs.len() as f64;
        table.row(&[
            window.to_string(),
            label.to_string(),
            format!("{reliable}/5"),
            format!("{avg_rounds:.0}"),
            format!("{avg_tx:.0}"),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_window_is_reliable() {
        let out = run_with_window(8, 3);
        assert!(out.is_reliable(), "uncommitted: {:?}", out.uncommitted);
    }

    #[test]
    fn double_window_costs_more_rounds() {
        let a = run_with_window(8, 3);
        let b = run_with_window(16, 3);
        assert!(b.rounds >= a.rounds);
    }
}
