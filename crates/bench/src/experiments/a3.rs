//! EXP-A3 — ablation: threshold acceptance vs majority acceptance.
//!
//! The paper's protocols accept on `t·mf + 1` copies *of one value*
//! (threshold rule) and reserve majority voting for the source step,
//! where the intake is `2·t·mf + 1`. This ablation shows the design is
//! load-bearing: under the threshold rule forged copies are inert (a
//! wrong value can never reach the threshold), so the adversary's only
//! lever is suppression; under a majority rule each corruption both
//! removes a correct copy and adds a wrong one, so safety requires
//! twice the intake — and at the threshold rule's intake the majority
//! rule is actively forgeable.

use bftbcast::prelude::*;

use super::lattice_scenario;

/// One run: protocol with per-node send quota `quota`, majority
/// acceptance at `quorum`.
fn majority_run(s: &Scenario, quota: u64, quorum: u64) -> CountingOutcome {
    let proto = CountingProtocol::starved(s.grid(), s.params(), quota);
    let mut sim = s.counting_sim(proto);
    sim.run_majority_oracle(s.params().mf, quorum)
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-A3: acceptance-rule ablation (per-receiver oracle, lattice adversary)",
        &[
            "r",
            "t",
            "mf",
            "rule",
            "quorum/threshold",
            "send quota",
            "coverage",
            "wrong accepts",
        ],
    );
    for &(r, mult, t, mf) in &[(1u32, 5u32, 1u32, 4u64), (2, 4, 1, 10), (2, 4, 2, 8)] {
        let s = lattice_scenario(r, mult, t, mf);
        let p = s.params();
        let tmf1 = u64::from(t) * mf + 1;
        let two = 2 * u64::from(t) * mf + 1;

        // Threshold rule at the paper's budget (protocol B).
        let out = s.run_protocol_b(Adversary::PerReceiverOracle);
        table.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            "threshold".into(),
            tmf1.to_string(),
            p.sufficient_budget().to_string(),
            format!("{:.3}", out.coverage()),
            out.wrong_accepts.to_string(),
        ]);

        // Majority rule, intake sized like the threshold rule: forgeable.
        let out = majority_run(&s, tmf1, tmf1);
        table.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            "majority".into(),
            tmf1.to_string(),
            tmf1.to_string(),
            format!("{:.3}", out.coverage()),
            out.wrong_accepts.to_string(),
        ]);

        // Majority rule, doubled quorum: safe again, at twice the intake.
        let out = majority_run(&s, two, two);
        table.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            "majority".into(),
            two.to_string(),
            two.to_string(),
            format!("{:.3}", out.coverage()),
            out.wrong_accepts.to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_at_low_quorum_is_forged_threshold_is_not() {
        let s = lattice_scenario(2, 4, 1, 10);
        let tmf1 = 11;
        let low = majority_run(&s, tmf1, tmf1);
        assert!(low.wrong_accepts > 0, "low-quorum majority must be forged");
        let out = s.run_protocol_b(Adversary::PerReceiverOracle);
        assert!(out.is_reliable());
    }

    #[test]
    fn doubled_quorum_restores_safety() {
        for &(r, mult, t, mf) in &[(1u32, 5u32, 1u32, 4u64), (2, 4, 2, 8)] {
            let s = lattice_scenario(r, mult, t, mf);
            let two = 2 * u64::from(t) * mf + 1;
            let out = majority_run(&s, two, two);
            assert!(
                out.is_correct(),
                "r={r}: wrong accepts {}",
                out.wrong_accepts
            );
            assert!(out.is_complete(), "r={r}: coverage {}", out.coverage());
        }
    }
}
