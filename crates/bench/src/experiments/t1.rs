//! EXP-T1 — Theorem 1 / Figure 1: the lower bound `m0`.
//!
//! A double-stripe adversary isolates a band of the torus. Under the
//! paper's per-receiver accounting (oracle), every band node is starved
//! **iff `m < m0`** — the threshold is exact. Under physical global
//! budgets the greedy adversary is weaker (budget sharing across
//! victims), which the second table quantifies: the reproduction finding
//! of EXPERIMENTS.md.
//!
//! Declarative port: `scenarios/t1.scn` sweeps `m` across the
//! threshold at the `(r, t, mf) = (1, 1, 10)` point.

use bftbcast::prelude::*;

use super::{band_rows, double_stripe_scenario, fmt_f};

/// Sweep points: `(r, mult, t, mf)`.
const POINTS: &[(u32, u32, u32, u64)] = &[
    (1, 5, 1, 10),
    (1, 5, 1, 100),
    (1, 5, 2, 50),
    (2, 4, 1, 50),
    (2, 4, 3, 40),
    (2, 4, 5, 25),
];

fn band_starved(scenario: &Scenario, r: u32, mult: u32, m: u64, oracle: bool) -> (f64, bool) {
    let proto = CountingProtocol::starved(scenario.grid(), scenario.params(), m);
    let mut sim = scenario.counting_sim(proto);
    let out = if oracle {
        sim.run_oracle(scenario.params().mf)
    } else {
        sim.run(&mut bftbcast::adversary::GreedyFrontier::forward())
    };
    let grid = scenario.grid();
    let mut starved = true;
    for y in band_rows(r, mult) {
        for x in 0..grid.width() {
            let id = grid.id_at(x, y);
            if sim.is_good(id) && sim.accepted(id).is_some() {
                starved = false;
            }
        }
    }
    (out.coverage(), starved)
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut exact = Table::new(
        "EXP-T1: double-stripe starvation vs m (per-receiver oracle) — \
         paper: starved iff m < m0",
        &[
            "r",
            "t",
            "mf",
            "m0",
            "m",
            "coverage",
            "band starved",
            "matches Thm 1",
        ],
    );
    let mut physical = Table::new(
        "EXP-T1b: same sweep, physical global-budget greedy adversary \
         (reproduction finding: weaker than the proof's accounting)",
        &["r", "t", "mf", "m0", "m", "coverage", "band starved"],
    );

    for &(r, mult, t, mf) in POINTS {
        let scenario = double_stripe_scenario(r, mult, t, mf);
        let m0 = scenario.params().m0();
        // Probe below, at, and above the threshold.
        for m in [m0.saturating_sub(2).max(1), m0 - 1, m0, m0 + 1, 2 * m0] {
            let (coverage, starved) = band_starved(&scenario, r, mult, m, true);
            let predicted = m < m0;
            exact.row(&[
                r.to_string(),
                t.to_string(),
                mf.to_string(),
                m0.to_string(),
                m.to_string(),
                fmt_f(coverage),
                starved.to_string(),
                (starved == predicted).to_string(),
            ]);
            let (coverage, starved) = band_starved(&scenario, r, mult, m, false);
            physical.row(&[
                r.to_string(),
                t.to_string(),
                mf.to_string(),
                m0.to_string(),
                m.to_string(),
                fmt_f(coverage),
                starved.to_string(),
            ]);
        }
    }
    // Finding 1 quantified: the largest m the *physical* greedy can
    // still starve, vs the paper's m0 (which assumes per-receiver
    // capacity). The gap is the budget-sharing loss.
    // Our greedy is a heuristic, so the measured value is a *lower*
    // bound on the physical adversary's true threshold; the oracle
    // result pins the upper bound at m0 - 1. The truth lies between.
    let mut gap = Table::new(
        "EXP-T1c: empirical starvation threshold, physical greedy (lower bound) vs paper's m0",
        &[
            "r",
            "t",
            "mf",
            "m0 (paper)",
            "greedy starves up to m",
            "ratio",
        ],
    );
    for &(r, mult, t, mf) in POINTS {
        let scenario = double_stripe_scenario(r, mult, t, mf);
        let m0 = scenario.params().m0();
        // Scan downward from m0 - 1 for the physical threshold.
        let mut phys = 0u64;
        for m in (1..m0).rev() {
            let (_, starved) = band_starved(&scenario, r, mult, m, false);
            if starved {
                phys = m;
                break;
            }
        }
        gap.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            m0.to_string(),
            phys.to_string(),
            fmt_f(phys as f64 / m0 as f64),
        ]);
    }
    vec![exact, physical, gap]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn oracle_threshold_is_exactly_m0() {
        let tables = run();
        // The first table's last column records agreement with Theorem 1.
        for row in tables[0].rows() {
            assert_eq!(
                row.last().map(String::as_str),
                Some("true"),
                "sweep point contradicts Theorem 1 under the oracle: {row:?}"
            );
        }
    }
}
