//! EXP-T3 — Theorem 3 / Figure 5: heterogeneous budgets.
//!
//! With `mf` large (the Figure 2 regime) a homogeneous budget of `m0`
//! is *not* enough: the nodes just outside the decided square's edges
//! have too few suppliers (`~r(2r−1)·m0 ≤ 2·t·mf`), and the
//! per-receiver oracle blocks them — the exact obstacle Figure 2
//! illustrates. Boosting only
//! the cross-shaped area to `m' ≈ 2·m0` (protocol Bheter) restores full
//! coverage while the *average* budget stays near `m0`.
//!
//! Scale note (see DESIGN.md §5): the paper's cross spans a `778r²`
//! square; we run reduced-extent tori where the cross arms span the
//! torus. The constants of the full-scale induction are verified
//! exactly in `bftbcast-geometry` (EXP-G1/G2).

use bftbcast::net::Cross;
use bftbcast::prelude::*;

use super::{fmt_f, lattice_scenario};

/// Sweep points: `(r, mult, t, mf)` where homogeneous `m0` exhibits the
/// corner problem (needs `mf` large relative to `m0`, like the paper's
/// Figure 2 setting — at small `r` the frontier intake exceeds `2·t·mf`
/// and nothing stalls).
const POINTS: &[(u32, u32, u32, u64)] = &[(3, 7, 1, 500), (4, 5, 1, 1000), (4, 11, 1, 1000)];

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-T3: homogeneous m0 vs Bheter (cross m') vs homogeneous 2m0, per-receiver oracle",
        &[
            "r",
            "torus",
            "t",
            "mf",
            "protocol",
            "coverage",
            "avg budget/node",
            "vs 2m0 savings",
        ],
    );
    for &(r, mult, t, mf) in POINTS {
        let s = lattice_scenario(r, mult, t, mf);
        let p = s.params();
        let grid = s.grid();
        let cross = Cross::spanning(grid, 0, 0, 2 * r);
        let m0_avg = p.m0() as f64;
        let two_m0 = p.sufficient_budget() as f64;

        let homogeneous_m0 = {
            let proto = CountingProtocol::starved(grid, p, p.m0());
            let mut sim = s.counting_sim(proto);
            sim.run_oracle(mf)
        };
        let heter = s.run_heterogeneous(&cross, Adversary::PerReceiverOracle);
        let heter_avg = CountingProtocol::heterogeneous(grid, p, &cross)
            .average_budget(grid.nodes().filter(|id| !s.bad_nodes().contains(id)));
        let b = s.run_protocol_b(Adversary::PerReceiverOracle);

        for (name, out, avg) in [
            ("homogeneous m0", &homogeneous_m0, m0_avg),
            ("Bheter (cross m')", &heter, heter_avg),
            ("homogeneous 2m0", &b, two_m0),
        ] {
            table.row(&[
                r.to_string(),
                format!("{}x{}", grid.width(), grid.height()),
                t.to_string(),
                mf.to_string(),
                name.to_string(),
                fmt_f(out.coverage()),
                fmt_f(avg),
                format!("{:.1}%", 100.0 * (1.0 - avg / two_m0)),
            ]);
        }
    }
    vec![table]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corner_problem_blocks_homogeneous_m0() {
        let (r, mult, t, mf) = POINTS[0];
        let s = lattice_scenario(r, mult, t, mf);
        let proto = CountingProtocol::starved(s.grid(), s.params(), s.params().m0());
        let mut sim = s.counting_sim(proto);
        let out = sim.run_oracle(mf);
        assert!(
            !out.is_complete(),
            "m0 alone should hit the corner problem, coverage {}",
            out.coverage()
        );
    }

    #[test]
    fn bheter_restores_full_coverage_cheaply() {
        for &(r, mult, t, mf) in POINTS {
            let s = lattice_scenario(r, mult, t, mf);
            let cross = Cross::spanning(s.grid(), 0, 0, 2 * r);
            let out = s.run_heterogeneous(&cross, Adversary::PerReceiverOracle);
            assert!(
                out.is_reliable(),
                "Bheter failed at r={r} mult={mult}: {}",
                out.coverage()
            );
            let avg = CountingProtocol::heterogeneous(s.grid(), s.params(), &cross)
                .average_budget(s.grid().nodes());
            assert!(
                avg < s.params().sufficient_budget() as f64,
                "heterogeneous must be cheaper than 2m0 on average"
            );
        }
    }
}
