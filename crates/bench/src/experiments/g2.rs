//! EXP-G2 — Lemmas 10–11: circle growth constants.
//!
//! Reproduction findings (quantified here, discussed in
//! EXPERIMENTS.md): at `R = 550r²` the ring width is `δ ≈ 0.005`, not
//! the paper's `> 0.53` (which matches `R ≈ 950r²`); and the `778r²`
//! square *inscribes* the `550r²` disc rather than containing it — the
//! corrected bootstrap square has side `1100r²`. The lemma's
//! conclusions (growth is self-sustaining from `550r²`; the cross stays
//! `Θ(r³)`) survive both corrections.

use bftbcast::geometry::expanding::{
    lemma10_delta, min_growth_coeff, sagitta, square_contains_disc,
};
use bftbcast::prelude::Table;

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut growth = Table::new(
        "EXP-G2: circle growth at R = c*r^2 with 74r chords (Lemma 10)",
        &[
            "r",
            "delta at c=550 (paper: >0.53)",
            "delta at c=950",
            "min c for growth",
        ],
    );
    for r in [1u32, 2, 4, 8, 16, 32] {
        growth.row(&[
            r.to_string(),
            format!("{:+.4}", lemma10_delta(r, 550.0)),
            format!("{:+.4}", lemma10_delta(r, 950.0)),
            format!("{:.1}", min_growth_coeff(r)),
        ]);
    }

    let mut bootstrap = Table::new(
        "EXP-G2b: Lemma 11 bootstrap containment (square side s*r^2 vs disc radius 550r^2)",
        &["square side", "contains 550r^2 disc", "note"],
    );
    bootstrap.row(&[
        "778".into(),
        square_contains_disc(778.0, 550.0).to_string(),
        format!(
            "778 ~ 550*sqrt(2) = {:.1}: the square inscribed IN the disc",
            550.0 * 2f64.sqrt()
        ),
    ]);
    bootstrap.row(&[
        "1100".into(),
        square_contains_disc(1100.0, 550.0).to_string(),
        "corrected constant (2*550)".into(),
    ]);

    let mut sag = Table::new(
        "EXP-G2c: paper's |HH1| < 0.72 intermediate claim",
        &["radius", "sagitta of 74r chord (r=1)", "paper claim"],
    );
    sag.row(&[
        "550r^2".into(),
        format!("{:.4}", sagitta(550.0, 74.0)),
        "< 0.72 (does not hold)".into(),
    ]);
    sag.row(&[
        "950r^2".into(),
        format!("{:.4}", sagitta(950.0, 74.0)),
        "matches at R ~ 950r^2".into(),
    ]);

    vec![growth, bootstrap, sag]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn growth_is_positive_at_550_for_all_r() {
        for r in 1..=64u32 {
            assert!(lemma10_delta(r, 550.0) > 0.0, "r={r}");
        }
    }

    #[test]
    fn paper_constants_documented_deviations() {
        // delta > 0.53 does NOT hold at 550 (it needs ~950):
        assert!(lemma10_delta(1, 550.0) < 0.53);
        assert!(1.25 - sagitta(950.0, 74.0) > 0.52);
        // 778 square does not contain the 550 disc:
        assert!(!square_contains_disc(778.0, 550.0));
    }
}
