//! EXP-E1 — energy and lifetime: what the message bounds buy.
//!
//! Converts the paper's message budgets into joules and battery
//! lifetimes under a first-order Mica2-class radio model, for each of
//! the three known-`mf` strategies plus Theorem 4's coded regime
//! (where the unit is `K·L` sub-bit slots per message). The lifetime
//! ratio B : Koo matches the paper's `½(r(2r+1)−t)` message saving.

use bftbcast::coding::{segment, subbit::SubbitParams};
use bftbcast::prelude::*;
use bftbcast::protocols::bounds::theorem4_budget;
use bftbcast::protocols::energy::{lifetime_comparison, EnergyModel};

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let model = EnergyModel::mica2_default();
    let bits = 128u64;

    let mut life = Table::new(
        "EXP-E1a: per-node lifetime (broadcast tasks per battery, 128-bit value, Mica2-class radio)",
        &[
            "r",
            "t",
            "mf",
            "B quota",
            "Koo quota",
            "B lifetime",
            "heter off-cross",
            "Koo lifetime",
            "B:Koo",
        ],
    );
    for &(r, t, mf) in &[
        (1u32, 1u32, 50u64),
        (2, 1, 50),
        (2, 4, 50),
        (3, 2, 100),
        (4, 1, 1000),
    ] {
        let p = Params::new(r, t, mf);
        let cmp = lifetime_comparison(&model, p, bits);
        life.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            p.relay_quota().to_string(),
            p.koo_budget().to_string(),
            cmp.protocol_b.lifetime_broadcasts.to_string(),
            cmp.heterogeneous_avg.lifetime_broadcasts.to_string(),
            cmp.koo_baseline.lifetime_broadcasts.to_string(),
            format!(
                "{:.1}x",
                cmp.protocol_b.lifetime_broadcasts as f64
                    / cmp.koo_baseline.lifetime_broadcasts.max(1) as f64
            ),
        ]);
    }

    let mut coded = Table::new(
        "EXP-E1b: Theorem 4's coded regime — energy per broadcast when mf is unknown",
        &[
            "k bits",
            "K*L slots/msg",
            "Thm4 msgs",
            "mJ per broadcast",
            "broadcasts/battery",
            "within Thm4 budget",
        ],
    );
    let (n, t, mf, mmax) = (10_000u64, 1u64, 50u64, 1u64 << 20);
    for k in [16usize, 64, 128, 512] {
        let big_k = segment::coded_len(k).expect("valid k") as u64;
        let l = SubbitParams::for_network(n as usize, t as usize, mmax).len() as u64;
        let msgs = 2 * (t * mf + 1);
        let slots_per_msg = big_k * l;
        let e = model.with_range(2).broadcast_energy_j(msgs, slots_per_msg);
        // The closed-form Theorem 4 budget counts sub-bit
        // transmissions; for small k the real cascade exceeds the
        // paper's K <= k + 2 log k + 2 (EXPERIMENTS.md finding 3), so
        // the comparison is reported rather than asserted.
        let bound = theorem4_budget(n, k as u64, t, mf, mmax);
        coded.row(&[
            k.to_string(),
            slots_per_msg.to_string(),
            msgs.to_string(),
            format!("{:.2}", e * 1e3),
            model
                .with_range(2)
                .broadcasts_per_battery(msgs, slots_per_msg)
                .to_string(),
            (msgs * slots_per_msg <= bound).to_string(),
        ]);
    }

    vec![life, coded]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifetime_ratio_tracks_the_message_saving() {
        // The paper's saving is (2tmf+1)/relay_quota; the lifetime ratio
        // must track it within rounding (rx load dilutes it slightly).
        let model = EnergyModel::mica2_default();
        let p = Params::new(3, 2, 100);
        let cmp = lifetime_comparison(&model, p, 128);
        let msg_saving = p.koo_budget() as f64 / p.relay_quota() as f64;
        let life_ratio = cmp.protocol_b.lifetime_broadcasts as f64
            / cmp.koo_baseline.lifetime_broadcasts.max(1) as f64;
        assert!(
            (life_ratio - msg_saving).abs() / msg_saving < 0.25,
            "lifetime {life_ratio:.2} vs message saving {msg_saving:.2}"
        );
    }

    #[test]
    fn coded_regime_is_orders_of_magnitude_costlier() {
        // Unknown mf costs ~K*L more bits per message — the quantified
        // price of dropping the known-budget assumption.
        let tables = run();
        assert_eq!(tables.len(), 2);
        assert!(!tables[1].is_empty());
    }
}
