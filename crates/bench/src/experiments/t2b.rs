//! EXP-T2b — §1.3/§3 cost claim: protocol B is `½(r(2r+1) − t)` times
//! cheaper than the Koo et al. (PODC'06) baseline.
//!
//! Pure bound arithmetic plus a measured check that both protocols
//! actually succeed at their stated budgets.

use bftbcast::prelude::*;

use super::{fmt_f, lattice_scenario};

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut table = Table::new(
        "EXP-T2b: per-node budget vs the Koo-PODC'06 baseline (mf = 1000)",
        &[
            "r",
            "t",
            "baseline m=2tmf+1",
            "ours m=2m0",
            "measured ratio",
            "claimed (r(2r+1)-t)/2",
        ],
    );
    let mf = 1000u64;
    for (r, t_list) in [
        (1u32, vec![1u32, 2]),
        (2, vec![1, 4, 9]),
        (3, vec![1, 10]),
        (4, vec![1, 17, 35]),
    ] {
        for t in t_list {
            let p = Params::new(r, t, mf);
            table.row(&[
                r.to_string(),
                t.to_string(),
                p.koo_budget().to_string(),
                p.sufficient_budget().to_string(),
                fmt_f(p.actual_baseline_ratio()),
                fmt_f(p.claimed_baseline_ratio()),
            ]);
        }
    }

    // Measured: both succeed; per-node copies actually sent.
    let mut measured = Table::new(
        "EXP-T2b (measured): average copies sent per good node to reach full coverage",
        &["r", "t", "mf", "protocol", "coverage", "avg copies/node"],
    );
    for &(r, mult, t, mf) in &[(2u32, 4u32, 1u32, 50u64), (2, 4, 4, 30)] {
        let s = lattice_scenario(r, mult, t, mf);
        let b = s.run_protocol_b(Adversary::PerReceiverOracle);
        let k = s.run_koo_baseline(Adversary::PerReceiverOracle);
        for (name, out) in [("B (2m0)", &b), ("Koo (2tmf+1)", &k)] {
            measured.row(&[
                r.to_string(),
                t.to_string(),
                mf.to_string(),
                name.to_string(),
                fmt_f(out.coverage()),
                fmt_f(out.avg_copies_per_good()),
            ]);
        }
    }
    vec![table, measured]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratio_is_within_half_unit_of_claim() {
        // Ceilings make the measured ratio at most the claim and no less
        // than half of it.
        for r in 1..5u32 {
            for t in [1u32, r * (2 * r + 1) - 1] {
                let p = Params::new(r, t, 1000);
                let actual = p.actual_baseline_ratio();
                let claimed = p.claimed_baseline_ratio();
                assert!(actual <= claimed + 1e-9, "r={r} t={t}");
                assert!(actual >= claimed / 2.0 - 1e-9, "r={r} t={t}");
            }
        }
    }

    #[test]
    fn baseline_and_b_both_reliable() {
        let s = lattice_scenario(2, 4, 1, 50);
        assert!(s.run_protocol_b(Adversary::PerReceiverOracle).is_reliable());
        assert!(s
            .run_koo_baseline(Adversary::PerReceiverOracle)
            .is_reliable());
    }
}
