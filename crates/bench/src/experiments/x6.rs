//! EXP-X6 — probabilistic bad-node placement (the paper's stated
//! future work).
//!
//! The conclusion suggests "allowing probabilistic placement of bad
//! nodes in the network as in \[4\]". We connect iid corruption at rate
//! `p` to the paper's deterministic guarantees:
//!
//! * every result is conditioned on the local bound `t`; under iid
//!   corruption the bound holds with probability at least
//!   `1 − n·P[Bin((2r+1)²−1, p) > t]` (union bound, conservative);
//! * protocol **B** provisioned for `t` is therefore reliable with at
//!   least that probability — and the measured reliability is *higher*,
//!   both because the union bound over-counts and because an
//!   over-loaded neighborhood still needs the oracle to exploit it.
//!
//! The experiment reports, per `(r, t)`: the 99%-confidence critical
//! rate `p*`, then at rates bracketing it the analytic bound, the
//! Monte-Carlo bound-holding rate, and the end-to-end measured
//! reliability of protocol B under the per-receiver oracle.

use bftbcast::adversary::probabilistic::{
    critical_p, local_bound_holds_probability, BernoulliPlacement,
};
use bftbcast::adversary::{respects_local_bound, Placement};
use bftbcast::prelude::*;

use super::torus_side;

/// Monte-Carlo reliability of protocol B (provisioned for `t`) under
/// seeded Bernoulli placements at rate `p`, against the per-receiver
/// oracle. Returns `(reliable_fraction, bound_held_fraction)`.
pub fn measured_reliability(
    r: u32,
    mult: u32,
    t: u32,
    mf: u64,
    p: f64,
    samples: u64,
    base_seed: u64,
) -> (f64, f64) {
    let side = torus_side(r, mult);
    let grid = Grid::new(side, side, r).expect("valid grid");
    let params = Params::new(r, t, mf);
    let mut reliable = 0u64;
    let mut held = 0u64;
    for i in 0..samples {
        let bad = BernoulliPlacement {
            p,
            seed: base_seed.wrapping_add(i),
            source: 0,
        }
        .bad_nodes(&grid);
        if respects_local_bound(&grid, &bad, t as usize) {
            held += 1;
        }
        let proto = CountingProtocol::protocol_b(&grid, params);
        let mut sim = bftbcast::sim::CountingSim::new(grid.clone(), proto, 0, &bad, mf);
        if sim.run_oracle(mf).is_reliable() {
            reliable += 1;
        }
    }
    (
        reliable as f64 / samples as f64,
        held as f64 / samples as f64,
    )
}

/// Runs the experiment.
pub fn run() -> Vec<Table> {
    let mut crit = Table::new(
        "EXP-X6a: critical iid corruption rate p* (local bound holds with 99% confidence, union bound)",
        &["r", "t", "n", "neighborhood", "p*"],
    );
    for &(r, t, mult) in &[
        (1u32, 1u32, 5u32),
        (1, 2, 5),
        (2, 2, 4),
        (2, 4, 4),
        (3, 4, 3),
    ] {
        let side = u64::from(torus_side(r, mult));
        let n = side * side;
        let p_star = critical_p(n, r, u64::from(t), 0.99);
        crit.row(&[
            r.to_string(),
            t.to_string(),
            n.to_string(),
            ((2 * u64::from(r) + 1).pow(2) - 1).to_string(),
            format!("{p_star:.4}"),
        ]);
    }

    let mut rel = Table::new(
        "EXP-X6b: protocol B under iid corruption — analytic bound vs Monte-Carlo (100 seeds, oracle adversary)",
        &[
            "r",
            "t",
            "mf",
            "p",
            "analytic >=",
            "bound held",
            "measured reliable",
        ],
    );
    let (r, t, mf, mult) = (2u32, 2u32, 10u64, 4u32);
    let side = u64::from(torus_side(r, mult));
    let n = side * side;
    let p_star = critical_p(n, r, u64::from(t), 0.99);
    for scale in [0.5, 1.0, 2.0, 4.0] {
        let p = (p_star * scale).min(0.9);
        let analytic = local_bound_holds_probability(n, r, u64::from(t), p);
        let (reliable, held) = measured_reliability(r, mult, t, mf, p, 100, 0xBF7B);
        rel.row(&[
            r.to_string(),
            t.to_string(),
            mf.to_string(),
            format!("{p:.4}"),
            format!("{analytic:.3}"),
            format!("{held:.2}"),
            format!("{reliable:.2}"),
        ]);
    }

    vec![crit, rel]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_dominates_the_analytic_bound() {
        // The union bound is a valid lower bound on measured reliability
        // (with Monte-Carlo slack).
        let (r, t, mf, mult) = (2u32, 2u32, 10u64, 4u32);
        let side = u64::from(torus_side(r, mult));
        let n = side * side;
        for p in [0.005, 0.01, 0.02] {
            let analytic = local_bound_holds_probability(n, r, u64::from(t), p);
            let (reliable, _) = measured_reliability(r, mult, t, mf, p, 60, 7);
            assert!(
                reliable >= analytic - 0.1,
                "p={p}: measured {reliable} below analytic {analytic}"
            );
        }
    }

    #[test]
    fn reliability_degrades_gracefully_past_the_bound() {
        // Well past p*, the bound often breaks yet broadcast frequently
        // still succeeds — the bound is conservative by construction.
        let (reliable, held) = measured_reliability(2, 4, 2, 10, 0.08, 60, 11);
        assert!(held < 0.7, "bound should break often at p=0.08: {held}");
        assert!(
            reliable >= held,
            "an overloaded neighborhood is necessary, not sufficient, for failure"
        );
    }

    #[test]
    fn empirical_rate_is_at_least_union_bound_at_scale() {
        use bftbcast::adversary::probabilistic::empirical_local_bound_rate;
        let grid = Grid::new(20, 20, 2).unwrap();
        let analytic = local_bound_holds_probability(400, 2, 3, 0.02);
        let emp = empirical_local_bound_rate(&grid, 0, 3, 0.02, 150, 3);
        assert!(emp >= analytic - 0.1, "{emp} vs {analytic}");
    }
}
