//! The benchmark harness: one experiment per figure/theorem of the
//! paper, each regenerating the corresponding construction or bound as
//! a printable table (see `EXPERIMENTS.md` for the index and the
//! paper-vs-measured record).
//!
//! Every experiment is a pure function returning [`Table`]s so it can be
//! driven both by the `exp` binary (`cargo run -p bftbcast-bench --bin
//! exp -- all`) and by the criterion benches (`cargo bench`), which
//! print the tables and then time the underlying engine work.

pub mod experiments;

pub use bftbcast::prelude::Table;

/// All experiment ids, in DESIGN.md order.
pub const ALL_EXPERIMENTS: &[&str] = &[
    "t1", "f2", "t2", "t2b", "c1", "t3", "g1", "g2", "f9", "t4", "a1", "a2", "a3", "e1", "l1",
    "x1", "x2", "x4", "x5", "x6", "scale",
];

/// Runs one experiment by id, returning its report tables.
///
/// # Panics
///
/// Panics on an unknown id (the `exp` binary validates first).
pub fn run_experiment(id: &str) -> Vec<Table> {
    match id {
        "t1" => experiments::t1::run(),
        "f2" => experiments::f2::run(),
        "t2" => experiments::t2::run(),
        "t2b" => experiments::t2b::run(),
        "c1" => experiments::c1::run(),
        "t3" => experiments::t3::run(),
        "g1" => experiments::g1::run(),
        "g2" => experiments::g2::run(),
        "f9" => experiments::f9::run(),
        "t4" => experiments::t4::run(),
        "a1" => experiments::a1::run(),
        "a2" => experiments::a2::run(),
        "a3" => experiments::a3::run(),
        "e1" => experiments::e1::run(),
        "l1" => experiments::l1::run(),
        "x1" => experiments::x1::run(),
        "x2" => experiments::x2::run(),
        "x4" => experiments::x4::run(),
        "x5" => experiments::x5::run(),
        "x6" => experiments::x6::run(),
        "scale" => experiments::scale::run(),
        other => panic!("unknown experiment id {other:?} (known: {ALL_EXPERIMENTS:?})"),
    }
}
