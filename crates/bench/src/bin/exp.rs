//! Experiment driver: regenerates the paper's figures/theorems as
//! tables.
//!
//! ```text
//! cargo run --release -p bftbcast-bench --bin exp -- all
//! cargo run --release -p bftbcast-bench --bin exp -- f2 t4
//! cargo run --release -p bftbcast-bench --bin exp -- --json f2
//! cargo run --release -p bftbcast-bench --bin exp -- --json --out reports f2
//! cargo run --release -p bftbcast-bench --bin exp -- --json --figures x1
//! ```
//!
//! With `--json`, each experiment additionally dumps
//! `BENCH_<exp>.json` into `--out DIR` (default: the working
//! directory; created if missing): wall time plus every result table
//! (title, headers, rows) — the machine-readable record the perf
//! trajectory tracks across commits. Adding `--figures` also renders
//! `BENCH_<exp>.svg` alongside it: the first result table with at
//! least two numeric columns as a line chart (x = the first numeric
//! column, one series per remaining numeric column).

use bftbcast::json::{escape as json_escape, string_array as json_string_array};
use bftbcast::viz::LineChart;
use bftbcast_bench::Table;
use bftbcast_bench::{run_experiment, ALL_EXPERIMENTS};
use std::fmt::Write as _;

/// Serializes one experiment report as a JSON document.
fn report_json(id: &str, wall: std::time::Duration, tables: &[Table]) -> String {
    let mut out = String::new();
    let _ = write!(
        out,
        "{{\n  \"experiment\": \"{}\",\n  \"wall_time_ms\": {:.3},\n  \"tables\": [",
        json_escape(id),
        wall.as_secs_f64() * 1e3,
    );
    for (i, table) in tables.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(
            out,
            "\n    {{\n      \"title\": \"{}\",\n      \"headers\": {},\n      \"rows\": [",
            json_escape(table.title()),
            json_string_array(table.headers()),
        );
        for (j, row) in table.rows().iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            let _ = write!(out, "\n        {}", json_string_array(row));
        }
        out.push_str("\n      ]\n    }");
    }
    out.push_str("\n  ]\n}\n");
    out
}

/// Renders an experiment's headline figure: the first table with at
/// least two fully-numeric columns becomes a line chart (x = the first
/// numeric column, one series per remaining numeric column). `None`
/// when no table is chartable (e.g. purely boolean/text reports).
fn report_figure(id: &str, tables: &[Table]) -> Option<String> {
    for table in tables {
        let headers = table.headers();
        let rows = table.rows();
        if rows.is_empty() {
            continue;
        }
        let numeric: Vec<usize> = (0..headers.len())
            .filter(|&col| {
                rows.iter()
                    .all(|row| row.get(col).is_some_and(|cell| cell.parse::<f64>().is_ok()))
            })
            .collect();
        if numeric.len() < 2 {
            continue;
        }
        let x_col = numeric[0];
        let mut chart = LineChart::new(
            format!("{id}: {}", table.title()),
            headers[x_col].clone(),
            "value",
        );
        for &col in &numeric[1..] {
            let points: Vec<(f64, f64)> = rows
                .iter()
                .map(|row| {
                    (
                        row[x_col].parse().expect("checked numeric"),
                        row[col].parse().expect("checked numeric"),
                    )
                })
                .collect();
            chart.series(headers[col].clone(), &points);
        }
        return Some(chart.render());
    }
    None
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut json = false;
    let mut figures = false;
    let mut out_dir = std::path::PathBuf::from(".");
    let mut named: Vec<&str> = Vec::new();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--json" => json = true,
            "--figures" => figures = true,
            "--out" => match iter.next() {
                Some(dir) => out_dir = std::path::PathBuf::from(dir),
                None => {
                    eprintln!("--out needs a directory argument");
                    std::process::exit(2);
                }
            },
            flag if flag.starts_with("--") => {
                eprintln!("unknown flag {flag:?}; supported: --json, --figures, --out DIR");
                std::process::exit(2);
            }
            id => named.push(id),
        }
    }
    let ids: Vec<&str> = if named.is_empty() || named.contains(&"all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        named
    };
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(id) {
            eprintln!("unknown experiment {id:?}; known: {ALL_EXPERIMENTS:?}");
            std::process::exit(2);
        }
    }
    if figures && !json {
        eprintln!("--figures renders alongside BENCH_<exp>.json; it needs --json");
        std::process::exit(2);
    }
    if json {
        if let Err(e) = std::fs::create_dir_all(&out_dir) {
            eprintln!("error: cannot create {}: {e}", out_dir.display());
            std::process::exit(1);
        }
    }
    for id in ids {
        let start = std::time::Instant::now();
        let tables = run_experiment(id);
        let wall = start.elapsed();
        for table in &tables {
            println!("{table}");
        }
        println!("[{id} finished in {wall:?}]\n");
        if json {
            let path = out_dir.join(format!("BENCH_{id}.json"));
            if let Err(e) = std::fs::write(&path, report_json(id, wall, &tables)) {
                eprintln!("error: cannot write {}: {e}", path.display());
                std::process::exit(1);
            }
            println!("[wrote {}]\n", path.display());
            if figures {
                match report_figure(id, &tables) {
                    None => println!("[{id}: no table with two numeric columns to chart]\n"),
                    Some(svg) => {
                        let path = out_dir.join(format!("BENCH_{id}.svg"));
                        if let Err(e) = std::fs::write(&path, svg) {
                            eprintln!("error: cannot write {}: {e}", path.display());
                            std::process::exit(1);
                        }
                        println!("[wrote {}]\n", path.display());
                    }
                }
            }
        }
    }
}
