//! Experiment driver: regenerates the paper's figures/theorems as
//! tables.
//!
//! ```text
//! cargo run --release -p bftbcast-bench --bin exp -- all
//! cargo run --release -p bftbcast-bench --bin exp -- f2 t4
//! ```

use bftbcast_bench::{run_experiment, ALL_EXPERIMENTS};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let ids: Vec<&str> = if args.is_empty() || args.iter().any(|a| a == "all") {
        ALL_EXPERIMENTS.to_vec()
    } else {
        args.iter().map(String::as_str).collect()
    };
    for id in &ids {
        if !ALL_EXPERIMENTS.contains(id) {
            eprintln!("unknown experiment {id:?}; known: {ALL_EXPERIMENTS:?}");
            std::process::exit(2);
        }
    }
    for id in ids {
        let start = std::time::Instant::now();
        for table in run_experiment(id) {
            println!("{table}");
        }
        println!("[{} finished in {:?}]\n", id, start.elapsed());
    }
}
