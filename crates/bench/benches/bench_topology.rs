//! BENCH-TOPOLOGY — the CSR + bitset fast path vs the naive `Grid`
//! iterators it replaced in every engine hot loop.
//!
//! Three layers, all on the 100×100, r = 5 torus (n = 10⁴ nodes,
//! degree 120) the perf trajectory tracks:
//!
//! * **primitive**: neighborhood iteration, pair membership and
//!   common-neighbor intersection, naive vs precomputed;
//! * **wave kernel**: one incoming-copy accumulation sweep over a 500-
//!   sender frontier — the inner loop of the counting engine's oracle
//!   waves — naive vs CSR slices;
//! * **engine**: a full `CountingSim::run_oracle` fixpoint on the same
//!   torus (the rewired engine end to end, construction included).

use bftbcast::net::{Grid, NodeId, Topology};
use bftbcast::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn grid() -> Grid {
    Grid::new(100, 100, 5).unwrap()
}

fn frontier(g: &Grid) -> Vec<(NodeId, u64)> {
    // A plausible mid-run wave: every 20th node transmits 59 copies.
    (0..g.node_count())
        .step_by(20)
        .map(|u| (u, 59u64))
        .collect()
}

fn bench_primitives(c: &mut Criterion) {
    let g = grid();
    let topo = Topology::new(g.clone());
    let n = g.node_count();
    let pairs: Vec<(NodeId, NodeId)> = (0..n).step_by(7).map(|u| (u, (u * 37 + 11) % n)).collect();

    let mut group = c.benchmark_group("topology/primitive");
    group.sample_size(20);
    group.bench_function("neighbors_naive_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for u in 0..n {
                for v in g.neighbors(u) {
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("neighbors_csr_full_sweep", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for u in 0..n {
                for &v in topo.neighbors_of(u) {
                    acc = acc.wrapping_add(v);
                }
            }
            black_box(acc)
        })
    });
    group.bench_function("are_neighbors_naive", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += usize::from(g.are_neighbors(u, v));
            }
            black_box(acc)
        })
    });
    group.bench_function("contains_bitset", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += usize::from(topo.contains(u, v));
            }
            black_box(acc)
        })
    });
    group.bench_function("common_neighbors_naive_alloc", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                acc += g.common_neighbors(u, (u + 1) % n).len() + v;
            }
            black_box(acc)
        })
    });
    group.bench_function("common_neighbors_bitset_into", |b| {
        let mut out = Vec::with_capacity(topo.degree());
        b.iter(|| {
            let mut acc = 0usize;
            for &(u, v) in &pairs {
                out.clear();
                topo.common_neighbors_into(u, (u + 1) % n, &mut out);
                acc += out.len() + v;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_wave_kernel(c: &mut Criterion) {
    let g = grid();
    let topo = Topology::new(g.clone());
    let wave = frontier(&g);
    let mut incoming = vec![0u64; g.node_count()];

    let mut group = c.benchmark_group("topology/wave_kernel");
    group.sample_size(20);
    group.bench_function("incoming_sweep_naive", |b| {
        b.iter(|| {
            incoming.fill(0);
            for &(s, copies) in &wave {
                for u in g.neighbors(s) {
                    incoming[u] += copies;
                }
            }
            black_box(incoming[0])
        })
    });
    group.bench_function("incoming_sweep_csr", |b| {
        b.iter(|| {
            incoming.fill(0);
            for &(s, copies) in &wave {
                for &u in topo.neighbors_of(s) {
                    incoming[u] += copies;
                }
            }
            black_box(incoming[0])
        })
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    // The Figure-2 setting scaled to the 100x100, r = 5 torus (100 is
    // not a multiple of 2r+1 = 11, so the exact lattice does not fit;
    // a random local-bound-respecting placement stands in): budgets
    // just above m0, per-receiver oracle adversary.
    let s = Scenario::builder(100, 100, 5)
        .faults(1, 1000)
        .random_placement(80, 42)
        .build()
        .expect("valid scenario");
    let p = s.params();

    let mut group = c.benchmark_group("topology/engine");
    group.sample_size(10);
    group.bench_function("run_oracle_100x100_r5", |b| {
        b.iter(|| {
            let proto = CountingProtocol::starved(s.grid(), p, p.m0() + 1);
            let mut sim = s.counting_sim(proto);
            black_box(sim.run_oracle(p.mf))
        })
    });
    group.bench_function("run_greedy_100x100_r5", |b| {
        b.iter(|| {
            let proto = CountingProtocol::starved(s.grid(), p, p.m0() + 1);
            let mut sim = s.counting_sim(proto);
            black_box(sim.run(&mut bftbcast::adversary::GreedyFrontier::default()))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_primitives, bench_wave_kernel, bench_engine);
criterion_main!(benches);
