//! Criterion bench for EXP-T3: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("t3") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::net::Cross;
    use bftbcast::prelude::*;
    let s = Scenario::builder(45, 45, 4)
        .faults(1, 1000)
        .lattice_placement()
        .build()
        .unwrap();
    let cross = Cross::spanning(s.grid(), 0, 0, 8);
    let mut g = c.benchmark_group("t3");
    g.sample_size(20);
    g.bench_function("bheter_oracle_45x45_r4", |b| {
        b.iter(|| std::hint::black_box(s.run_heterogeneous(&cross, Adversary::PerReceiverOracle)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
