//! Criterion bench for EXP-C1: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("c1") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    let s = Scenario::builder(20, 20, 2)
        .faults(5, 40)
        .stripe_placement(&[(6, 5, true), (15, 5, false)])
        .build()
        .unwrap();
    c.bench_function("c1/threshold_point_oracle", |b| {
        b.iter(|| {
            let proto = CountingProtocol::starved(s.grid(), s.params(), 40);
            let mut sim = s.counting_sim(proto);
            std::hint::black_box(sim.run_oracle(40))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
