//! Criterion bench for EXP-L1: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("l1") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut g = c.benchmark_group("l1");
    g.sample_size(20);
    use bftbcast::prelude::*;
    let s = Scenario::builder(20, 20, 2)
        .faults(1, 20)
        .lattice_placement()
        .build()
        .unwrap();
    g.bench_function("latency_profile_20x20_r2", |b| {
        b.iter(|| {
            let proto = CountingProtocol::protocol_b(s.grid(), s.params());
            let mut sim = s.counting_sim(proto);
            std::hint::black_box(sim.run_oracle(s.params().mf).waves)
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
