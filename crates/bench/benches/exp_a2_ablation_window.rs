//! Criterion bench for EXP-A2: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("a2") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    let s = Scenario::builder(15, 15, 1)
        .faults(1, 8)
        .random_placement(18, 4)
        .build()
        .unwrap();
    let mut g = c.benchmark_group("a2");
    g.sample_size(20);
    g.bench_function("breactive_nackforger_15x15", |b| {
        b.iter(|| {
            std::hint::black_box(s.run_reactive(16, 1 << 16, ReactiveAdversary::NackForger, 11))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
