//! Criterion bench for EXP-X4: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("x4") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut g = c.benchmark_group("x4");
    g.sample_size(20);
    g.bench_function("agreement_sweep_r2_t1_mf10", |b| {
        b.iter(|| std::hint::black_box(bftbcast_bench::experiments::x4::sweep_point(2, 1, 10)))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
