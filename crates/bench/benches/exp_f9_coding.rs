//! Criterion bench for EXP-F9: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("f9") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::coding::frame::Frame;
    use bftbcast::coding::segment;
    use bftbcast::coding::subbit::SubbitParams;
    use rand::{rngs::StdRng, SeedableRng};
    let msg: Vec<bool> = (0..1024).map(|i| i % 3 == 0).collect();
    c.bench_function("f9/segment_encode_verify_k1024", |b| {
        b.iter(|| {
            let coded = segment::encode(&msg).unwrap();
            std::hint::black_box(segment::verify(&coded, msg.len()).unwrap())
        })
    });
    let params = SubbitParams::with_length(42);
    let mut rng = StdRng::seed_from_u64(5);
    let payload: Vec<bool> = (0..128).map(|i| i % 2 == 0).collect();
    c.bench_function("f9/frame_roundtrip_k128_l42", |b| {
        b.iter(|| {
            let f = Frame::data(&payload, params, &mut rng);
            std::hint::black_box(f.decode_and_verify(params).unwrap())
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
