//! Criterion bench for EXP-T2B: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("t2b") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    c.bench_function("t2b/bound_arithmetic", |b| {
        b.iter(|| {
            let mut acc = 0u64;
            for r in 1..6u32 {
                for t in 1..(r * (2 * r + 1)) {
                    let p = Params::new(r, t, 1000);
                    acc = acc.wrapping_add(p.m0() + p.relay_quota() + p.koo_budget());
                }
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
