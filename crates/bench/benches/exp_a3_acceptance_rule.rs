//! Criterion bench for EXP-A3: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("a3") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut g = c.benchmark_group("a3");
    g.sample_size(20);
    use bftbcast::prelude::*;
    let s = Scenario::builder(20, 20, 2)
        .faults(1, 10)
        .lattice_placement()
        .build()
        .unwrap();
    g.bench_function("majority_oracle_20x20_r2", |b| {
        b.iter(|| {
            let proto = CountingProtocol::starved(s.grid(), s.params(), 21);
            let mut sim = s.counting_sim(proto);
            std::hint::black_box(sim.run_majority_oracle(s.params().mf, 21))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
