//! Criterion bench for EXP-G1: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("g1") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::geometry::committed::CommittedLine;
    use bftbcast::geometry::expanding::lemma9_sweep;
    use bftbcast::geometry::point::Pt;
    c.bench_function("g1/lemma9_sweep_r8_x16", |b| {
        b.iter(|| std::hint::black_box(lemma9_sweep(8, 16)))
    });
    c.bench_function("g1/frontier_bound_r6_all", |b| {
        b.iter(|| {
            let mut ok = true;
            for rho in -6..=0i128 {
                for l in 7..40i128 {
                    let cl = CommittedLine::new(6, rho, Pt::int(0, 0), l);
                    ok &= cl.frontier_bound_holds(3);
                }
            }
            std::hint::black_box(ok)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
