//! Criterion bench for EXP-T2: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("t2") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    let s = Scenario::builder(20, 20, 2)
        .faults(4, 30)
        .lattice_placement()
        .build()
        .unwrap();
    c.bench_function("t2/protocol_b_oracle_20x20_r2_t4", |b| {
        b.iter(|| std::hint::black_box(s.run_protocol_b(Adversary::PerReceiverOracle)))
    });
    c.bench_function("t2/protocol_b_greedy_20x20_r2_t4", |b| {
        b.iter(|| std::hint::black_box(s.run_protocol_b(Adversary::Greedy)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
