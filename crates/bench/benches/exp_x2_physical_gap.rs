//! Criterion bench for EXP-X2: prints the regenerated tables once,
//! then times the experiment's core kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("x2") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::adversary::GreedyFrontier;
    use bftbcast::prelude::*;
    let s = Scenario::builder(20, 20, 2)
        .faults(1, 50)
        .stripe_placement(&[(6, 1, true), (15, 1, false)])
        .build()
        .unwrap();
    let mut g = c.benchmark_group("x2");
    g.sample_size(20);
    g.bench_function("corner_hunter_20x20_r2", |b| {
        b.iter(|| {
            let proto = CountingProtocol::starved(s.grid(), s.params(), s.params().m0() / 2);
            let mut sim = s.counting_sim(proto);
            std::hint::black_box(sim.run(&mut GreedyFrontier::corners()))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
