//! Criterion bench for EXP-E1: prints the regenerated tables once,
//! then times the experiment's core kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("e1") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    use bftbcast::protocols::energy::{lifetime_comparison, EnergyModel};
    let model = EnergyModel::mica2_default();
    let mut g = c.benchmark_group("e1");
    g.sample_size(20);
    g.bench_function("lifetime_comparison_sweep", |b| {
        b.iter(|| {
            for r in 1..=4u32 {
                let p = Params::new(r, 1, 50);
                std::hint::black_box(lifetime_comparison(&model, p, 128));
            }
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
