//! Criterion bench for EXP-T1: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("t1") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    let side = 20u32;
    let s = Scenario::builder(side, side, 2)
        .faults(3, 40)
        .stripe_placement(&[(6, 3, true), (15, 3, false)])
        .build()
        .unwrap();
    let p = s.params();
    c.bench_function("t1/double_stripe_oracle_20x20_r2", |b| {
        b.iter(|| {
            let proto = CountingProtocol::starved(s.grid(), p, p.m0() - 1);
            let mut sim = s.counting_sim(proto);
            std::hint::black_box(sim.run_oracle(p.mf))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
