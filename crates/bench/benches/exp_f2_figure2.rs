//! Criterion bench for EXP-F2: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("f2") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    let s = bftbcast_bench::experiments::f2::scenario();
    let p = s.params();
    c.bench_function("f2/figure2_oracle_45x45_r4", |b| {
        b.iter(|| {
            let proto = CountingProtocol::starved(s.grid(), p, p.m0() + 1);
            let mut sim = s.counting_sim(proto);
            std::hint::black_box(sim.run_oracle(p.mf))
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
