//! Criterion bench for EXP-A1: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("a1") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    let s = Scenario::builder(20, 20, 2)
        .faults(2, 60)
        .lattice_placement()
        .build()
        .unwrap();
    c.bench_function("a1/koo_baseline_oracle_20x20", |b| {
        b.iter(|| std::hint::black_box(s.run_koo_baseline(Adversary::PerReceiverOracle)))
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
