//! Criterion bench for EXP-G2: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("g2") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::geometry::expanding::{lemma10_delta, min_growth_coeff};
    c.bench_function("g2/circle_growth_quantities", |b| {
        b.iter(|| {
            let mut acc = 0.0f64;
            for r in 1..=64u32 {
                acc += lemma10_delta(r, 550.0) + min_growth_coeff(r);
            }
            std::hint::black_box(acc)
        })
    });
}

criterion_group!(benches, bench);
criterion_main!(benches);
