//! Criterion bench for EXP-X6: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("x6") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut g = c.benchmark_group("x6");
    g.sample_size(20);
    g.bench_function("bernoulli_reliability_20_seeds", |b| {
        b.iter(|| {
            std::hint::black_box(bftbcast_bench::experiments::x6::measured_reliability(
                2, 4, 2, 10, 0.005, 20, 3,
            ))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
