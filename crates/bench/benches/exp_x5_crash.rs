//! Criterion bench for EXP-X5: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("x5") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    let mut g = c.benchmark_group("x5");
    g.sample_size(20);
    use bftbcast::prelude::*;
    use bftbcast::sim::crash::{crash_only_protocol, crash_stripe, CrashBehavior, HybridSim};
    let grid = Grid::new(20, 20, 2).unwrap();
    g.bench_function("crash_stripe_block_20x20_r2", |b| {
        b.iter(|| {
            let mut dead = crash_stripe(&grid, 6, 2);
            dead.extend(crash_stripe(&grid, 14, 2));
            dead.sort_unstable();
            dead.dedup();
            let proto = crash_only_protocol(&grid);
            let mut sim = HybridSim::new(grid.clone(), proto, 0)
                .with_crash_nodes(&dead, CrashBehavior::Immediate);
            std::hint::black_box(sim.run(0))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
