//! Criterion bench for EXP-X1: prints the regenerated tables once,
//! then times the experiment's core engine kernel.

use criterion::{criterion_group, criterion_main, Criterion};

fn print_tables() {
    for table in bftbcast_bench::run_experiment("x1") {
        println!("{table}");
    }
}

fn bench(c: &mut Criterion) {
    print_tables();
    use bftbcast::prelude::*;
    let s = Scenario::builder(27, 27, 4)
        .faults(1, 1000)
        .lattice_placement()
        .build()
        .unwrap();
    let p = s.params();
    let mut g = c.benchmark_group("x1");
    g.sample_size(30);
    g.bench_function("open_region_probe_27x27_r4", |b| {
        b.iter(|| {
            let proto = CountingProtocol::starved(s.grid(), p, p.m0() + 3);
            let mut sim = s.counting_sim(proto);
            std::hint::black_box(sim.run_oracle(p.mf))
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
