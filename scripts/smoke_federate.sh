#!/usr/bin/env bash
# Smoke test for sweep federation: start three `bftbcast serve`
# backends on ephemeral ports, run `bftbcast federate` against all
# three, assert the Figure 2 goldens (2065 / 1947 / 947, stall 84),
# then SIGKILL one backend mid-sweep and assert the coordinator still
# completes 100% of the points by failing the dead shard over to the
# survivors. Finishes by `store sync`ing the survivor shards and
# fsck'ing every shard (the killed one after `store repair`, which
# heals any torn tail the SIGKILL left).
#
# Usage: scripts/smoke_federate.sh [path-to-bftbcast-binary]
# (run from the repo root; CI passes target/release/bftbcast)
set -euo pipefail

BIN=${1:-target/release/bftbcast}
PIDS=()
STORES=()
LOGS=()
SCRATCH=()

cleanup() {
  for pid in "${PIDS[@]:-}"; do
    if [ -n "$pid" ] && kill -0 "$pid" 2>/dev/null; then
      kill "$pid" 2>/dev/null || true
      wait "$pid" 2>/dev/null || true
    fi
  done
  rm -rf "${STORES[@]:-}" "${LOGS[@]:-}" "${SCRATCH[@]:-}"
}
trap cleanup EXIT INT TERM

scratch() { local f; f=$(mktemp); SCRATCH+=("$f"); echo "$f"; }
expect() { # expect <haystack-file> <needle>...
  local file=$1; shift
  for needle in "$@"; do
    grep -qF "$needle" "$file" || { echo "MISSING $needle in:"; cat "$file"; exit 1; }
  done
}

# --- three backends, each with its own shard store ------------------
ADDRS=()
for i in 0 1 2; do
  STORE=$(mktemp -d); STORES+=("$STORE")
  LOG=$(mktemp); LOGS+=("$LOG")
  "$BIN" serve --addr 127.0.0.1:0 --store "$STORE" >"$LOG" &
  PIDS+=($!)
  for _ in $(seq 100); do
    grep -q '^listening on ' "$LOG" && break
    kill -0 "${PIDS[$i]}" 2>/dev/null || { echo "backend $i died:"; cat "$LOG"; exit 1; }
    sleep 0.1
  done
  ADDR=$(sed -n 's/^listening on //p' "$LOG" | head -n1)
  [ -n "$ADDR" ] || { echo "backend $i never announced its address"; cat "$LOG"; exit 1; }
  ADDRS+=("$ADDR")
  echo "backend $i up on $ADDR (store: $STORE)"
done

# --- federated f2: the paper goldens over real sockets --------------
ROWS=$(scratch); SUMMARY=$(scratch)
"$BIN" federate scenarios/f2.scn \
  --addr "${ADDRS[0]}" --addr "${ADDRS[1]}" --addr "${ADDRS[2]}" \
  >"$ROWS" 2>"$SUMMARY"
expect "$ROWS" '"intake":2065' '"intake":1947' '"tally_wrong":947' \
               '"accepted_true":84'
expect "$SUMMARY" '1 point(s)'
echo "federated f2 reproduces the goldens"

# --- kill a backend mid-sweep: the run must still finish ------------
# t1.scn expands to 5 points, so the rendezvous shard spreads work
# across the backends; SIGKILL-ing one while the sweep is in flight
# forces the coordinator down the failover path (or, if the kill lands
# before its first point, the preflight/dead-backend path — either
# way 100% completion is the contract).
ROWS2=$(scratch); SUMMARY2=$(scratch)
"$BIN" federate scenarios/t1.scn \
  --addr "${ADDRS[0]}" --addr "${ADDRS[1]}" --addr "${ADDRS[2]}" \
  >"$ROWS2" 2>"$SUMMARY2" &
FED_PID=$!
sleep 0.3
kill -9 "${PIDS[1]}" 2>/dev/null || true
wait "${PIDS[1]}" 2>/dev/null || true
PIDS[1]=""
echo "backend 1 SIGKILLed mid-sweep"
wait "$FED_PID" || { echo "federate failed after backend death:"; cat "$SUMMARY2"; exit 1; }
POINTS=$(wc -l <"$ROWS2")
[ "$POINTS" -eq 5 ] || { echo "expected 5 rows, got $POINTS:"; cat "$ROWS2"; exit 1; }
expect "$SUMMARY2" '5 point(s)'
echo "sweep completed 5/5 despite the dead backend"

# --- reconcile the survivors, verify every shard --------------------
"$BIN" store sync "${STORES[0]}" "${STORES[2]}"
"$BIN" store fsck --store "${STORES[0]}"
"$BIN" store fsck --store "${STORES[2]}"
# The SIGKILLed shard may carry a torn tail; repair converges it to a
# verified log, after which fsck must pass.
"$BIN" store repair --store "${STORES[1]}" >/dev/null
"$BIN" store fsck --store "${STORES[1]}"

# Graceful shutdown of the survivors.
for i in 0 2; do
  "$BIN" shutdown --addr "${ADDRS[$i]}" >/dev/null
  wait "${PIDS[$i]}"
  PIDS[$i]=""
done
echo "federate smoke OK"
