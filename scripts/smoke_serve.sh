#!/usr/bin/env bash
# Smoke test for the sweep service: start `bftbcast serve` on an
# ephemeral port, submit scenarios/f2.scn, assert the Figure 2 goldens
# (2065 / 1947 / 947, stall 84) from RESULTS, resubmit, and assert the
# warm job reports all cache hits (hits == points, misses == 0).
# Finishes with `store fsck` on the persisted log.
#
# Usage: scripts/smoke_serve.sh [path-to-bftbcast-binary]
# (run from the repo root; CI passes target/release/bftbcast)
set -euo pipefail

BIN=${1:-target/release/bftbcast}
STORE=$(mktemp -d)
LOG=$(mktemp)
SERVER_PID=""
SCRATCH=()

# Trap-based cleanup: whatever step fails (or signal arrives), the
# background serve process is killed and the temp files removed — a
# red CI run must never leak a listener.
cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$STORE" "$LOG" "${SCRATCH[@]:-}"
}
trap cleanup EXIT INT TERM

"$BIN" serve --addr 127.0.0.1:0 --store "$STORE" >"$LOG" &
SERVER_PID=$!

# The server prints "listening on HOST:PORT" once ready.
for _ in $(seq 100); do
  grep -q '^listening on ' "$LOG" && break
  kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died:"; cat "$LOG"; exit 1; }
  sleep 0.1
done
ADDR=$(sed -n 's/^listening on //p' "$LOG" | head -n1)
[ -n "$ADDR" ] || { echo "server never announced its address"; cat "$LOG"; exit 1; }
echo "server up on $ADDR (store: $STORE)"

job_id() { sed -n 's/.*"job":"\([^"]*\)".*/\1/p'; }
expect() { # expect <haystack-file> <needle>...
  local file=$1; shift
  for needle in "$@"; do
    grep -qF "$needle" "$file" || { echo "MISSING $needle in:"; cat "$file"; exit 1; }
  done
}
scratch() { local f; f=$(mktemp); SCRATCH+=("$f"); echo "$f"; }

# Cold submit: the Figure 2 goldens, bit-exact.
JOB=$("$BIN" submit scenarios/f2.scn --addr "$ADDR" | job_id)
echo "cold job: $JOB"
ROWS=$(scratch); "$BIN" results "$JOB" --addr "$ADDR" >"$ROWS"
expect "$ROWS" '"intake":2065' '"intake":1947' '"tally_wrong":947' \
               '"accepted_true":84' '"complete":false'

# Warm resubmit: zero engine runs.
JOB2=$("$BIN" submit scenarios/f2.scn --addr "$ADDR" | job_id)
echo "warm job: $JOB2"
ROWS2=$(scratch); "$BIN" results "$JOB2" --addr "$ADDR" >"$ROWS2"
cmp -s "$ROWS" "$ROWS2" || { echo "warm rows differ from cold rows"; diff "$ROWS" "$ROWS2"; exit 1; }
STATUS2=$(scratch); "$BIN" status "$JOB2" --addr "$ADDR" >"$STATUS2"
expect "$STATUS2" '"state":"done"' '"cache_hits":1' '"cache_misses":0'

STATS=$(scratch); "$BIN" stats --addr "$ADDR" >"$STATS"
expect "$STATS" '"store_entries":1' '"store_hits":1' '"jobs_done":2'

"$BIN" shutdown --addr "$ADDR" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""

# The drained, fsynced store verifies clean.
"$BIN" store fsck --store "$STORE"
echo "serve smoke OK"
