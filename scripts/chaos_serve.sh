#!/usr/bin/env bash
# Chaos test for the serve/store path, against the release binary:
# crash the server with SIGKILL mid-life, mangle the persisted log with
# seed-derived garbage, and assert the recovery story end to end —
# `store fsck` detects the damage, `store repair` heals it, a restarted
# server replays the f2 sweep 100% warm with bit-identical rows.
#
# Usage: scripts/chaos_serve.sh [path-to-bftbcast-binary]
# (run from the repo root; CI passes target/release/bftbcast)
set -euo pipefail

BIN=${1:-target/release/bftbcast}
STORE=$(mktemp -d)
LOG=$(mktemp)
SERVER_PID=""
SCRATCH=()

cleanup() {
  if [ -n "$SERVER_PID" ] && kill -0 "$SERVER_PID" 2>/dev/null; then
    kill -9 "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
  fi
  rm -rf "$STORE" "$LOG" "${SCRATCH[@]:-}"
}
trap cleanup EXIT INT TERM

scratch() { local f; f=$(mktemp); SCRATCH+=("$f"); echo "$f"; }
job_id() { sed -n 's/.*"job":"\([^"]*\)".*/\1/p'; }
expect() { # expect <haystack-file> <needle>...
  local file=$1; shift
  for needle in "$@"; do
    grep -qF "$needle" "$file" || { echo "MISSING $needle in:"; cat "$file"; exit 1; }
  done
}

start_server() {
  : >"$LOG"
  "$BIN" serve --addr 127.0.0.1:0 --store "$STORE" >"$LOG" &
  SERVER_PID=$!
  for _ in $(seq 100); do
    grep -q '^listening on ' "$LOG" && break
    kill -0 "$SERVER_PID" 2>/dev/null || { echo "server died:"; cat "$LOG"; exit 1; }
    sleep 0.1
  done
  ADDR=$(sed -n 's/^listening on //p' "$LOG" | head -n1)
  [ -n "$ADDR" ] || { echo "server never announced its address"; cat "$LOG"; exit 1; }
}

# Cold run: compute the Figure 2 goldens once and keep the rows as the
# oracle every post-chaos replay must match byte for byte.
start_server
echo "server up on $ADDR (store: $STORE)"
JOB=$("$BIN" submit scenarios/f2.scn --addr "$ADDR" | job_id)
GOLDEN=$(scratch); "$BIN" results "$JOB" --addr "$ADDR" >"$GOLDEN"
expect "$GOLDEN" '"intake":2065' '"intake":1947' '"tally_wrong":947' \
                 '"accepted_true":84' '"complete":false'

for SEED in C0FFEE DECADE 0005EED5; do
  echo "--- chaos round, seed $SEED ---"

  # Crash: SIGKILL, no shutdown handshake, no fsync courtesy.
  kill -9 "$SERVER_PID"
  wait "$SERVER_PID" 2>/dev/null || true
  SERVER_PID=""

  # Mangle the log tail with seed-derived garbage (deterministic per
  # round: the seed string repeated to a seed-dependent length).
  GARBAGE_LEN=$(( 16 + 16#$SEED % 48 ))
  printf "garbage-%s-" "$SEED" | head -c "$GARBAGE_LEN" \
    >>"$STORE/store.log"

  # fsck must detect the damage (nonzero exit) and repair must heal it.
  if "$BIN" store fsck --store "$STORE" >/dev/null 2>&1; then
    echo "fsck missed injected corruption (seed $SEED)"; exit 1
  fi
  REPAIR=$(scratch); "$BIN" store repair --store "$STORE" >"$REPAIR"
  expect "$REPAIR" 'rewrote log'
  "$BIN" store fsck --store "$STORE" >/dev/null

  # Restart + resubmit: the healed store replays 100% warm with rows
  # bit-identical to the cold run.
  start_server
  JOB=$("$BIN" submit scenarios/f2.scn --addr "$ADDR" | job_id)
  ROWS=$(scratch); "$BIN" results "$JOB" --addr "$ADDR" >"$ROWS"
  cmp -s "$GOLDEN" "$ROWS" || { echo "post-repair rows differ (seed $SEED)"; diff "$GOLDEN" "$ROWS"; exit 1; }
  STATUS=$(scratch); "$BIN" status "$JOB" --addr "$ADDR" >"$STATUS"
  expect "$STATUS" '"state":"done"' '"cache_hits":1' '"cache_misses":0'
done

"$BIN" shutdown --addr "$ADDR" >/dev/null
wait "$SERVER_PID"
SERVER_PID=""
"$BIN" store fsck --store "$STORE"
echo "chaos serve OK"
