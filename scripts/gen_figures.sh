#!/usr/bin/env bash
# Regenerates the committed figure gallery under docs/figures/ from the
# declarative scenarios: the ported experiments (f2, t1, x4), the RBC
# wire-cost comparison (rbc-wire) and the example files. Rendering is
# deterministic, so CI runs this script and
# fails if the regenerated SVGs differ from the committed ones — figure
# drift is caught exactly like number drift (see docs/FIGURES.md).
#
# Usage: scripts/gen_figures.sh [path-to-bftbcast-binary] [out-dir]
# (run from the repo root; CI passes target/release/bftbcast)
set -euo pipefail

BIN=${1:-target/release/bftbcast}
OUT=${2:-docs/figures}

# f2 is a single point: an intake heat map of the stalled torus, the
# Figure 2 goldens (2065 / 1947 / 947, stall 84) in the caption.
"$BIN" report --scenario scenarios/f2.scn --out "$OUT"

# The sweeps render as charts: t1's coverage-vs-m flip at m0 = 11, and
# x4's agreement outcome over the colluders' p1 x pe schedule grid.
"$BIN" report --scenario scenarios/t1.scn --out "$OUT"
"$BIN" report --scenario scenarios/x4.scn --out "$OUT"

# The RBC wire-cost comparison: bits on wire vs payload size, one
# series per protocol (the protocol axis is string-valued, so the
# numeric payload axis carries x and protocol keys the series).
"$BIN" report --scenario scenarios/rbc-wire.scn \
  --field wire_bits --x payload --log-x --out "$OUT"

# Delivery latency under adversarial schedules with live equivocators:
# waves to quiescence per delivery schedule (the series) across seeds.
"$BIN" report --scenario scenarios/rbc-adversary.scn \
  --field waves --x seed --out "$OUT"

# The example scenarios: combinations no EXP-* experiment covers.
for scn in scenarios/examples/*.scn; do
  "$BIN" report --scenario "$scn" --out "$OUT"
done

echo "figures regenerated into $OUT"
