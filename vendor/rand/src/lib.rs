//! Offline stand-in for the `rand` crate (0.9 API surface).
//!
//! The build environment has no registry access, so this workspace
//! vendors the subset of `rand` it actually uses: [`rngs::StdRng`]
//! seeded via [`SeedableRng::seed_from_u64`], the [`Rng`] extension
//! methods `random`, `random_range` and `random_bool`, and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ with a
//! SplitMix64 seeding stage — deterministic per seed, which is all the
//! simulation engines require (every experiment fixes its seeds).

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of random 64-bit words.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types samplable uniformly from the generator's raw stream.
pub trait Standard: Sized {
    /// One uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges a value of type `T` can be drawn from.
pub trait SampleRange<T> {
    /// One uniform sample from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                // Modulo bias is < span / 2^128: irrelevant for tests.
                let v = u128::sample(rng) % span;
                self.start.wrapping_add(v as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range");
                let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range.
                    return u128::sample(rng) as $t;
                }
                let v = u128::sample(rng) % span;
                lo.wrapping_add(v as $t)
            }
        }
    )*};
}
impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// A uniform sample of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// A uniform sample from `range`.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p out of [0, 1]");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (not the real
    /// `rand` StdRng — streams differ, determinism per seed does not).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: core::array::from_fn(|_| splitmix64(&mut sm)),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

pub use seq::SliceRandom;

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v: u32 = rng.random_range(3..10u32);
            assert!((3..10).contains(&v));
            let w = rng.random_range(0..=4u64);
            assert!(w <= 4);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn bool_probability_sane() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.7)).count();
        assert!((6500..7500).contains(&hits), "got {hits}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "astronomically unlikely identity shuffle");
    }
}
