//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the subset of criterion its benches use: [`Criterion`],
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size`/`finish`, [`Bencher::iter`], and the
//! [`criterion_group!`]/[`criterion_main!`] macros. Each benchmark is
//! auto-calibrated to a target measurement time, then reports min /
//! mean / max per-iteration wall time on stdout. No statistics beyond
//! that, no HTML reports, no regression baselines.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export matching `criterion::black_box` (deprecated upstream in
/// favor of `std::hint::black_box`, which the benches already use).
pub use std::hint::black_box;

/// Runs the closure under measurement.
pub struct Bencher {
    samples: usize,
    /// Mean per-iteration time of the final measurement, filled by `iter`.
    result: Option<Sample>,
}

#[derive(Debug, Clone, Copy)]
struct Sample {
    min: Duration,
    mean: Duration,
    max: Duration,
    iters: u64,
}

impl Bencher {
    /// Times `f`, auto-calibrating iteration count per sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Calibrate: grow the batch until one batch costs >= 5ms.
        let mut batch: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(5) || batch >= 1 << 24 {
                break;
            }
            batch *= 4;
        }
        let mut min = Duration::MAX;
        let mut max = Duration::ZERO;
        let mut total = Duration::ZERO;
        let mut iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let per_iter = start.elapsed() / batch as u32;
            min = min.min(per_iter);
            max = max.max(per_iter);
            total += per_iter;
            iters += batch;
        }
        self.result = Some(Sample {
            min,
            mean: total / self.samples as u32,
            max,
            iters,
        });
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

fn run_one(name: &str, samples: usize, f: &mut dyn FnMut(&mut Bencher)) {
    let mut b = Bencher {
        samples,
        result: None,
    };
    f(&mut b);
    match b.result {
        Some(s) => println!(
            "{name:<50} time: [{:>12?} {:>12?} {:>12?}]  ({} iters)",
            s.min, s.mean, s.max, s.iters
        ),
        None => println!("{name:<50} (no measurement: Bencher::iter never called)"),
    }
}

impl Criterion {
    /// Benchmarks `f` under `id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(id, self.sample_size, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.to_string(),
            sample_size: self.sample_size,
            _criterion: self,
        }
    }
}

/// A named group; benchmark ids are printed as `group/id`.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the number of samples per benchmark in this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `f` under `group/id`.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        run_one(&format!("{}/{id}", self.name), self.sample_size, &mut f);
        self
    }

    /// Ends the group (formatting no-op, kept for API parity).
    pub fn finish(self) {}
}

/// Declares a function running the listed benchmark targets.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a bench binary (`harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_measures() {
        let mut c = Criterion::default();
        let mut hits = 0u64;
        c.bench_function("smoke", |b| b.iter(|| hits = hits.wrapping_add(1)));
        assert!(hits > 0);
    }

    #[test]
    fn group_runs_and_finishes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut hits = 0u64;
        g.bench_function("smoke", |b| b.iter(|| hits = hits.wrapping_add(1)));
        g.finish();
        assert!(hits > 0);
    }
}
