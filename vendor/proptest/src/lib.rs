//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no registry access, so this workspace
//! vendors the subset of proptest it uses: the [`proptest!`] macro with
//! an optional `#![proptest_config(...)]` header, `prop_assert!` /
//! `prop_assert_eq!` / `prop_assume!`, integer/float range strategies,
//! `any::<T>()`, tuple strategies, `prop_map`, and
//! [`collection::vec`]. **No shrinking**: a failing case reports its
//! seed and inputs via the assertion message instead of minimizing.
//! Case generation is deterministic per test (seeded from the test
//! name), so failures reproduce without recorded seeds.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{RngCore, SeedableRng};

/// Deterministic per-test RNG handed to strategies.
pub struct TestRng(StdRng);

impl TestRng {
    /// Seeded from a stable hash of the test name.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// Why a generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// A `prop_assert!` failed: the property is violated.
    Fail(String),
    /// A `prop_assume!` rejected the inputs: try another case.
    Reject,
}

/// Result of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

pub mod test_runner {
    //! Runner configuration (mirrors `proptest::test_runner`).

    /// How many cases each property runs.
    #[derive(Debug, Clone, Copy)]
    pub struct Config {
        /// Number of successful (non-rejected) cases required.
        pub cases: u32,
    }

    impl Config {
        /// A config running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            // The real default is 256; 64 keeps the heavier simulation
            // properties fast while still exercising the space.
            Config { cases: 64 }
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use super::TestRng;
    use core::ops::{Range, RangeInclusive};

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// The [`Strategy::prop_map`] adapter.
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.f)(self.inner.generate(rng))
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let v = rand::Rng::random::<u128>(rng) % span;
                    (self.start as i128 + v as i128) as $t
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as i128 - lo as i128) as u128 + 1;
                    let v = rand::Rng::random::<u128>(rng) % span;
                    (lo as i128 + v as i128) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    // 128-bit ranges go through wrapping u128 arithmetic (a full-width
    // span wraps to 0; treated as the whole domain).
    macro_rules! impl_range_strategy_128 {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty strategy range");
                    let span = (self.end as u128).wrapping_sub(self.start as u128);
                    let v = rand::Rng::random::<u128>(rng) % span;
                    self.start.wrapping_add(v as $t)
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty strategy range");
                    let span = (hi as u128).wrapping_sub(lo as u128).wrapping_add(1);
                    let v = if span == 0 {
                        rand::Rng::random::<u128>(rng)
                    } else {
                        rand::Rng::random::<u128>(rng) % span
                    };
                    lo.wrapping_add(v as $t)
                }
            }
        )*};
    }
    impl_range_strategy_128!(i128, u128);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty strategy range");
            self.start + rand::Rng::random::<f64>(rng) * (self.end - self.start)
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty strategy range");
            // Occasionally emit the exact endpoints so boundary behavior
            // is exercised even without shrinking.
            match rand::Rng::random_range(rng, 0..64u32) {
                0 => lo,
                1 => hi,
                _ => lo + rand::Rng::random::<f64>(rng) * (hi - lo),
            }
        }
    }

    /// Full-type-range strategy returned by [`super::arbitrary::any`].
    pub struct Any<T>(pub(crate) core::marker::PhantomData<T>);

    macro_rules! impl_any {
        ($($t:ty),*) => {$(
            impl Strategy for Any<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rand::Rng::random::<$t>(rng)
                }
            }
        )*};
    }
    impl_any!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, i128, isize, bool, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);

    /// Always generates a clone of one value.
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }
}

pub mod arbitrary {
    //! `any::<T>()` — the full-type-range strategy.

    use super::strategy::Any;

    /// A strategy generating any value of `T` (for types the stand-in
    /// supports; see the `impl Strategy for Any<_>` list).
    pub fn any<T>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::TestRng;
    use core::ops::Range;

    /// Length specification for [`vec()`].
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy for `Vec<S::Value>` with length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `proptest::collection::vec(element, size)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rand::Rng::random_range(rng, self.size.lo..self.size.hi);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod prelude {
    //! The glob import the workspace's property tests use.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    pub use crate::{TestCaseError, TestCaseResult};
}

/// Fails the current case with a formatted message unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Fail(format!($($fmt)*)));
        }
    };
}

/// `prop_assert!(a == b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} == {:?}: {}", a, b, format!($($fmt)*));
    }};
}

/// `prop_assert!(a != b)` with a diff-style message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: {:?} != {:?}", a, b);
    }};
}

/// Rejects the current case (does not count towards the case budget).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::Reject);
        }
    };
}

/// The property-test macro: each `fn name(x in strategy, ...) { body }`
/// becomes a `#[test]` running `config.cases` generated cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($items:tt)*) => {
        $crate::__proptest_items! { cfg = ($cfg); $($items)* }
    };
    ($($items:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::test_runner::Config::default()); $($items)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            let mut successes = 0u32;
            let mut rejects = 0u32;
            while successes < config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; ",)+),
                    $(&$arg),+
                );
                let outcome: $crate::TestCaseResult = (|| { $body Ok(()) })();
                match outcome {
                    Ok(()) => successes += 1,
                    Err($crate::TestCaseError::Reject) => {
                        rejects += 1;
                        assert!(
                            rejects < 65_536,
                            "prop_assume rejected too many cases in {}",
                            stringify!($name)
                        );
                    }
                    Err($crate::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property {} failed after {} cases: {}\n  inputs: {}",
                            stringify!($name), successes, msg, inputs
                        );
                    }
                }
            }
        }
        $crate::__proptest_items! { cfg = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_inclusive_and_exclusive(a in 3u32..7, b in 0i128..=4, f in 0.0f64..=1.0) {
            prop_assert!((3..7).contains(&a));
            prop_assert!((0..=4).contains(&b));
            prop_assert!((0.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps(v in (1u64..5, 0u64..3).prop_map(|(x, y)| x + y)) {
            prop_assert!((1..8).contains(&v));
        }

        #[test]
        fn vectors(v in crate::collection::vec(any::<bool>(), 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
        }

        #[test]
        fn assume_rejects(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
        }
    }

    #[test]
    fn deterministic_per_name() {
        use crate::strategy::Strategy;
        let mut a = crate::TestRng::deterministic("x");
        let mut b = crate::TestRng::deterministic("x");
        let s = 0u64..1_000_000;
        for _ in 0..16 {
            assert_eq!(s.generate(&mut a), s.generate(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property fails_visibly failed")]
    fn failure_panics_with_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            fn fails_visibly(n in 0u32..3) {
                prop_assert!(n > 10, "n was {}", n);
            }
        }
        fails_visibly();
    }
}
