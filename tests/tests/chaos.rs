//! The chaos harness: seeded end-to-end fault injection against the
//! serve/store path — the acceptance gate for PR 6.
//!
//! Every test here runs under multiple fixed fault-plan seeds and
//! asserts the one invariant the robustness layer promises: **every
//! injected fault yields either a typed error or bit-identical
//! goldens — never a panic, never a wrong result.**
//!
//! The scenarios:
//!
//! * crash the server mid-life (abandon it without shutdown, torn
//!   bytes on the log tail), restart on the same store, resubmit —
//!   the Figure 2 goldens (2065 / 1947 / 947, stall 84) come back
//!   bit-identically and 100% warm (zero engine runs);
//! * corrupt the log with seeded bit flips — `fsck` detects every
//!   flipped record, `repair` heals, recomputation reproduces the
//!   identical bytes;
//! * drop connections mid-request and mid-reply — the server keeps
//!   serving, the client sees typed errors, a retried fetch is
//!   bit-identical;
//! * inject ENOSPC and torn writes under live computes — callers get
//!   the right values (typed errors at worst), and every record a
//!   reopen recovers verifies.

use std::io::Write as _;
use std::sync::Arc;

use bftbcast::json::Json;
use bftbcast::scenario_file::{
    AdversarySpec, AgreementSpec, CrashNodesSpec, CrashSpec, PlacementSpec, ReactiveSpec,
    SourceSpec,
};
use bftbcast::sim::crash::CrashBehavior;
use bftbcast::sim::engine::AgreementMode;
use bftbcast::sim::slot::ReactiveAdversary;
use bftbcast::sim::DenseOracle;
use bftbcast::spec::EngineSpec;
use bftbcast_server::{client, Server};
use bftbcast_store::{fsck, fsck_report, repair, FaultPlan, Store};

/// The fixed fault-plan seeds the suite (and the CI chaos job) runs
/// under — three distinct schedules, per the acceptance criteria.
const SEEDS: [u64; 3] = [0xC0FFEE, 0xDECADE, 0x0005_EED5];

fn read_scn(rel: &str) -> String {
    let path = format!("{}/../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn temp_dir(tag: &str, seed: u64) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bftbcast-chaos-{tag}-{seed:x}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn start(store: Arc<Store>) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", store, None).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn field_u64(line: &str, key: &str) -> u64 {
    Json::parse(line)
        .unwrap_or_else(|e| panic!("bad JSON line {line:?}: {e}"))
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no u64 {key:?} in {line}"))
}

fn assert_f2_goldens(rows: &[String]) {
    assert_eq!(rows.len(), 1, "f2 is a single point");
    for needle in [
        "\"intake\":2065",
        "\"intake\":1947",
        "\"tally_wrong\":947",
        "\"accepted_true\":84",
        "\"complete\":false",
    ] {
        assert!(rows[0].contains(needle), "{needle} missing:\n{}", rows[0]);
    }
}

/// One SplitMix64 step — the same deterministic stream the fault plans
/// use, here generating per-seed garbage for crash tails.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The acceptance criterion, verbatim: injected crash + restart +
/// resubmit reproduces the f2 goldens with 100% warm-cache hits, under
/// every seed.
#[test]
fn crash_restart_resubmit_reproduces_f2_goldens_warm() {
    let f2 = read_scn("scenarios/f2.scn");
    for seed in SEEDS {
        let dir = temp_dir("crash", seed);

        // Life 1: compute f2 cold. The append lands (and flushes) as
        // part of the compute, *before* any orderly shutdown.
        let store = Arc::new(Store::open(&dir).expect("open store"));
        let (addr, _abandoned) = start(Arc::clone(&store));
        let job = client::submit(&addr, &f2).expect("cold submit");
        let (cold_rows, _) = client::results(&addr, &job).expect("cold results");
        assert_f2_goldens(&cold_rows);

        // Crash: no shutdown, no drain, no final fsync — the serve
        // thread is simply abandoned. Worse, the "crash" tears a
        // partial append onto the log tail (seeded garbage, so each
        // seed exercises a different tear).
        let mut state = seed;
        let tail_len = 1 + (splitmix(&mut state) as usize % 40);
        let garbage: Vec<u8> = (0..tail_len)
            .map(|_| (splitmix(&mut state) % 256) as u8)
            .collect();
        let mut log = std::fs::OpenOptions::new()
            .append(true)
            .open(dir.join("store.log"))
            .expect("open log for tearing");
        log.write_all(&garbage).expect("tear the tail");
        drop(log);

        // Life 2: restart on the same directory. Recovery trims (or
        // quarantines) the torn tail; the f2 record survives.
        let store2 = Arc::new(Store::open(&dir).expect("reopen after crash"));
        assert!(
            !store2.recovery().is_clean(),
            "seed {seed:#x}: the torn tail must be visible to recovery"
        );
        assert_eq!(store2.len(), 1, "the f2 outcome survived the crash");
        let (addr2, handle2) = start(Arc::clone(&store2));
        let job2 = client::submit(&addr2, &f2).expect("warm resubmit");
        let (warm_rows, _) = client::results(&addr2, &job2).expect("warm results");
        assert_eq!(
            warm_rows, cold_rows,
            "seed {seed:#x}: rows not bit-identical"
        );
        let status = client::status(&addr2, &job2).expect("status");
        assert_eq!(field_u64(&status, "cache_hits"), 1, "{status}");
        assert_eq!(field_u64(&status, "cache_misses"), 0, "100% warm: {status}");

        client::shutdown(&addr2).expect("shutdown");
        handle2.join().unwrap().unwrap();
        // After the drain + fsync, the log is clean again.
        assert!(fsck(&dir).is_ok(), "seed {seed:#x}: post-shutdown fsck");
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// Seeded bit flips: `fsck` detects exactly the corrupted records,
/// `repair` heals the log, and recomputing the lost keys reproduces
/// bit-identical values.
#[test]
fn fsck_detects_and_repair_heals_every_injected_flip() {
    let total = 32u64;
    let value_of = |k: u64| format!("outcome-{k:04}").repeat(4).into_bytes();
    for seed in SEEDS {
        let dir = temp_dir("flips", seed);
        let flips = {
            let store =
                Store::open_with_faults(&dir, FaultPlan::seeded(seed).bit_flips(250)).unwrap();
            for k in 0..total {
                let (v, _) = store
                    .get_or_compute(k, || Ok::<_, std::io::Error>(value_of(k)))
                    .expect("flips are silent: the caller sees success");
                assert_eq!(v, value_of(k), "seed {seed:#x}: caller got wrong bytes");
            }
            store.fault_stats().unwrap().bit_flips
        };
        assert!(flips > 0, "seed {seed:#x}: rate 250\u{2030} must fire");

        // fsck detects every injected corruption...
        let report = fsck_report(&dir).unwrap();
        assert_eq!(
            report.valid_records as u64,
            total - flips,
            "seed {seed:#x}: fsck must count exactly the unflipped records"
        );
        assert!(fsck(&dir).is_err(), "seed {seed:#x}: dirty log fails fsck");

        // ...which repair then heals.
        let healed = repair(&dir).unwrap();
        assert!(healed.rewritten);
        assert_eq!(healed.kept_records as u64, total - flips);
        assert!(fsck(&dir).is_ok(), "seed {seed:#x}: repaired log is clean");

        // Recomputing the quarantined keys reproduces identical bytes,
        // and every surviving record already verifies.
        let store = Store::open(&dir).unwrap();
        assert!(store.recovery().is_clean());
        for k in 0..total {
            let (v, _) = store
                .get_or_compute(k, || Ok::<_, std::io::Error>(value_of(k)))
                .unwrap();
            assert_eq!(v, value_of(k), "seed {seed:#x}: wrong value after repair");
        }
        assert_eq!(store.len() as u64, total);
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// One small deterministic spec per engine kind — the frontier-kernel
/// sweep the serve/store chaos cycle runs below.
fn frontier_sweep_specs() -> Vec<EngineSpec> {
    let counting = EngineSpec::counting(15, 15, 1)
        .name("chaos-frontier-counting")
        .faults(1, 6)
        .placement(PlacementSpec::Explicit(vec![(3, 4), (9, 11)]))
        .protocol_b()
        .adversary(AdversarySpec::Greedy)
        .finish()
        .expect("valid counting spec");
    let crash = EngineSpec::crash(13, 13, 1)
        .name("chaos-frontier-crash")
        .faults(1, 4)
        .placement(PlacementSpec::Explicit(vec![(11, 2)]))
        .protocol_b()
        .crash_load(CrashSpec {
            nodes: CrashNodesSpec::Stripe { y0: 6, height: 1 },
            behavior: CrashBehavior::AfterCopies(2),
        })
        .finish()
        .expect("valid crash spec");
    let slot = EngineSpec::slot(9, 9, 1)
        .name("chaos-frontier-slot")
        .faults(1, 4)
        .placement(PlacementSpec::Explicit(vec![(4, 7)]))
        .seed(0xF407_FEED)
        .reactive(ReactiveSpec {
            k: 4,
            mmax: 1 << 12,
            adversary: ReactiveAdversary::Mixed,
            budget: None,
            max_rounds: 20_000,
        })
        .finish()
        .expect("valid slot spec");
    let agreement = EngineSpec::agreement(9, 9, 2)
        .name("chaos-frontier-agreement")
        .faults(1, 3)
        .placement(PlacementSpec::Explicit(vec![(2, 2)]))
        .seed(7)
        .agreement_config(AgreementSpec {
            mode: AgreementMode::Cheap,
            source: SourceSpec::Split,
            p1: 0.5,
            pe: 0.25,
        })
        .finish()
        .expect("valid agreement spec");
    vec![counting, crash, slot, agreement]
}

/// The frontier-kernel tie-in: a sweep of all four engines through
/// serve/store with a crash + restart in the middle. The preflight
/// proves the kernel equivalence (frontier vs dense, per-wave, via
/// [`DenseOracle`]); the cycle then proves the serving stack built on
/// that kernel replays 100% warm after a crash — bit-identical rows,
/// and cache keys that are pure configuration (no scan-mode leakage),
/// so the kernel swap can never move a stored row's identity.
#[test]
fn frontier_engine_sweep_replays_warm_after_crash_with_stable_keys() {
    let specs = frontier_sweep_specs();
    // Kernel equivalence preflight: every spec's engine, both scan
    // modes, lockstep — outcomes and every per-node probe equal after
    // every wave (DenseOracle panics on the first divergence).
    for spec in &specs {
        let frontier = spec.build_engine().expect("buildable spec");
        let dense = spec.build_engine().expect("buildable spec");
        DenseOracle::new(frontier, dense).run();
    }
    let keys: Vec<u64> = specs.iter().map(EngineSpec::cache_key).collect();

    let seed = SEEDS[0];
    let dir = temp_dir("frontier", seed);

    // Life 1: cold-compute the whole sweep (the server's engines run
    // the default scan mode — the frontier kernel).
    let store = Arc::new(Store::open(&dir).expect("open store"));
    let (addr, _abandoned) = start(Arc::clone(&store));
    let mut cold_rows = Vec::new();
    for spec in &specs {
        let job = client::submit(&addr, &spec.to_scn()).expect("cold submit");
        let (rows, _) = client::results(&addr, &job).expect("cold results");
        assert!(!rows.is_empty(), "{}: no rows", spec.name());
        cold_rows.push(rows);
    }

    // Crash: abandon the serve thread and tear seeded garbage onto the
    // log tail, exactly like the f2 crash scenario.
    let mut state = seed;
    let tail_len = 1 + (splitmix(&mut state) as usize % 40);
    let garbage: Vec<u8> = (0..tail_len)
        .map(|_| (splitmix(&mut state) % 256) as u8)
        .collect();
    let mut log = std::fs::OpenOptions::new()
        .append(true)
        .open(dir.join("store.log"))
        .expect("open log for tearing");
    log.write_all(&garbage).expect("tear the tail");
    drop(log);

    // Life 2: recovery sees the tear, every stored row survives, and
    // the resubmitted sweep replays 100% warm and bit-identical.
    let store2 = Arc::new(Store::open(&dir).expect("reopen after crash"));
    assert!(!store2.recovery().is_clean(), "tear must be visible");
    assert_eq!(store2.len(), specs.len(), "one stored row per engine");
    let (addr2, handle2) = start(Arc::clone(&store2));
    for (i, spec) in specs.iter().enumerate() {
        assert_eq!(
            spec.cache_key(),
            keys[i],
            "{}: cache keys are configuration-only",
            spec.name()
        );
        let job = client::submit(&addr2, &spec.to_scn()).expect("warm resubmit");
        let (rows, _) = client::results(&addr2, &job).expect("warm results");
        assert_eq!(
            rows,
            cold_rows[i],
            "{}: rows not bit-identical",
            spec.name()
        );
        let status = client::status(&addr2, &job).expect("status");
        assert_eq!(field_u64(&status, "cache_hits"), 1, "{status}");
        assert_eq!(field_u64(&status, "cache_misses"), 0, "100% warm: {status}");
    }

    client::shutdown(&addr2).expect("shutdown");
    handle2.join().unwrap().unwrap();
    assert!(fsck(&dir).is_ok(), "post-shutdown fsck");
    std::fs::remove_dir_all(&dir).ok();
}

/// Connections dropped mid-request and mid-reply: the server keeps
/// serving, and a retried fetch returns the identical rows.
#[test]
fn dropped_connections_never_take_down_the_server_or_corrupt_results() {
    let f2 = read_scn("scenarios/f2.scn");
    let store = Arc::new(Store::in_memory());
    let (addr, handle) = start(Arc::clone(&store));
    let job = client::submit(&addr, &f2).expect("cold submit");
    let (rows, _) = client::results(&addr, &job).expect("cold results");
    assert_f2_goldens(&rows);

    for seed in SEEDS {
        // Mid-request drop: write half a submit line, hang up.
        let mut half = std::net::TcpStream::connect(&addr).unwrap();
        let cut = 1 + (seed as usize % 20);
        half.write_all(&format!("{{\"cmd\":\"submit\",\"scenario\":\"{f2}\"}}").as_bytes()[..cut])
            .unwrap();
        drop(half);

        // Mid-reply drop: request results, read nothing, hang up while
        // the server is writing rows at us.
        let mut gone = std::net::TcpStream::connect(&addr).unwrap();
        gone.write_all(format!("{{\"cmd\":\"results\",\"job\":\"{job}\"}}\n").as_bytes())
            .unwrap();
        drop(gone);

        // The server survives both and still serves correct, identical
        // results; a retrying client sees rows, not fragments.
        let (again, _) = client::results_with(&addr, &job, &client::RetryPolicy::default())
            .expect("results after drops");
        assert_eq!(again, rows, "seed {seed:#x}: rows drifted after drops");
    }
    let stats = client::stats(&addr).expect("stats");
    assert_eq!(field_u64(&stats, "jobs_done"), 1, "{stats}");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap().unwrap();
}

/// ENOSPC and torn writes under live computes: callers always get the
/// right value (the entry degrades to memory-only), nothing panics,
/// and every record a reopen recovers verifies against its checksum.
#[test]
fn write_faults_degrade_to_typed_errors_never_wrong_results() {
    let total = 48u64;
    let value_of = |k: u64| k.to_le_bytes().repeat(9);
    for seed in SEEDS {
        let dir = temp_dir("writes", seed);
        let injected = {
            let plan = FaultPlan::seeded(seed).torn_writes(200).no_space(200);
            let store = Store::open_with_faults(&dir, plan).unwrap();
            for k in 0..total {
                // get_or_compute absorbs append failures (memory-only
                // entry); a direct put surfaces them as typed errors.
                let (v, _) = store
                    .get_or_compute(k, || Ok::<_, std::io::Error>(value_of(k)))
                    .expect("compute result is never lost to an append fault");
                assert_eq!(v, value_of(k));
            }
            let put_dir = temp_dir("writes-put", seed);
            let err = Store::open_with_faults(&put_dir, FaultPlan::seeded(seed).no_space(1000))
                .unwrap()
                .put(0, b"doomed")
                .expect_err("a pure put under ENOSPC errors");
            assert!(err.to_string().contains("no space"), "{err}");
            std::fs::remove_dir_all(&put_dir).ok();
            let stats = store.fault_stats().unwrap();
            assert!(stats.torn_writes + stats.no_space > 0, "seed {seed:#x}");
            stats.torn_writes + stats.no_space
        };

        // Reopen faithfully: the faulted appends are absent, everything
        // recovered verifies, and re-adding the missing keys works.
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.len() as u64, total - injected);
        // Torn prefixes buried under later appends are quarantined in
        // place (recovery skips them; only repair removes them).
        let quarantined = store.recovery().quarantined_spans > 0;
        for k in 0..total {
            if let Some(v) = store.get(k) {
                assert_eq!(v, value_of(k), "seed {seed:#x}: corrupt record served");
            } else {
                assert!(store.put(k, &value_of(k)).unwrap());
            }
        }
        assert_eq!(store.len() as u64, total);
        drop(store);
        if quarantined {
            assert!(
                fsck(&dir).is_err(),
                "seed {seed:#x}: fsck must flag the spans"
            );
            assert!(repair(&dir).unwrap().rewritten);
        }
        assert!(
            fsck(&dir).is_ok(),
            "seed {seed:#x}: backfilled log verifies"
        );
        // The repaired, backfilled store serves every key.
        let store = Store::open(&dir).unwrap();
        assert!(store.recovery().is_clean());
        assert_eq!(store.len() as u64, total);
        std::fs::remove_dir_all(&dir).ok();
    }
}
