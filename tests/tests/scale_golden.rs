//! Pinned golden for the scale sweep's 1024×1024 point.
//!
//! The `scale` experiment (`crates/bench/src/experiments/scale.rs`)
//! sweeps the frontier kernel up to a 4096×4096 torus; its timings are
//! machine-dependent, but everything else about the 1024×1024 point is
//! exactly reproducible: the outcome counters of the broadcast and the
//! per-wave frontier trajectory. This test pins both — the counters
//! directly, and the trajectory as a rendered figure hashed through the
//! report layer ([`figure_hash`]), so any drift in the kernel, the
//! sweep's adversary construction, *or* the SVG renderer shows up as a
//! golden mismatch.
//!
//! [`figure_hash`]: bftbcast::report::figure_hash

use bftbcast::net::ScanMode;
use bftbcast::report::figure_hash;
use bftbcast::viz::LineChart;
use bftbcast_bench::experiments::scale;

#[test]
fn scale_1024_point_outcome_and_figure_are_pinned() {
    let (mut sim, mf) = scale::build_sim(1024);
    sim.set_scan_mode(ScanMode::Frontier);
    let mut run = sim.begin_oracle(mf);
    // The per-wave frontier trajectory: `front_size` before each step
    // is the sender set that step expands.
    let mut fronts: Vec<usize> = Vec::new();
    loop {
        fronts.push(run.front_size());
        if !sim.step_oracle(&mut run) {
            break;
        }
    }
    let out = sim.outcome();

    // The broadcast completes: the sparse adversary (spacing 103) never
    // exceeds t = 1 in any neighborhood, so protocol B reaches every
    // good node (1048576 cells minus the 10181 bad ones). The oracle
    // spends nothing: with relay quota 4 and threshold 5, a receiver's
    // first contact is always safe and its second is already hopeless.
    assert_eq!(out.waves, 518);
    assert_eq!(out.good_nodes, 1_038_395);
    assert_eq!(out.accepted_true, 1_038_395);
    assert_eq!(out.wrong_accepts, 0);
    assert_eq!(out.good_copies_sent, 9_345_546);
    assert_eq!(out.source_copies_sent, 9);
    assert_eq!(out.adversary_spent, 0);

    // The frontier grows to the torus midline and shrinks back: one
    // entry per wave plus the initial single-sender front.
    assert_eq!(fronts.len(), 519);
    assert_eq!(fronts[0], 1);
    assert_eq!(fronts.iter().copied().max(), Some(4049));

    // Figure: the frontier grow/shrink trajectory, sampled every 16th
    // wave, rendered and hashed through the report layer.
    let mut chart = LineChart::new(
        "scale-1024: per-wave frontier size",
        "wave",
        "front_senders",
    );
    let points: Vec<(f64, f64)> = fronts
        .iter()
        .enumerate()
        .step_by(16)
        .map(|(w, &f)| (w as f64, f as f64))
        .collect();
    chart.series("front", &points);
    let hash = figure_hash(&chart.render());
    assert_eq!(
        hash, 0x3f9a_5ac7_5f15_82c2,
        "scale-1024 figure drifted (kernel trajectory or SVG renderer changed)"
    );
}
