//! Integration: the paper's concrete numbers, end to end through the
//! public API.

use bftbcast::prelude::*;

/// Figure 2's headline arithmetic (§2).
#[test]
fn figure2_bounds() {
    let p = Params::new(4, 1, 1000);
    assert_eq!(p.m0(), 58);
    assert_eq!(p.source_quota(), 2001);
    assert_eq!(p.accept_threshold(), 1001);
    assert_eq!((p.r_2r1() - 1) * (p.m0() + 1), 2065);
}

/// The full Figure 2 run: stall at 84 nodes with p's exact tallies.
#[test]
fn figure2_full_construction() {
    let s = Scenario::builder(45, 45, 4)
        .faults(1, 1000)
        .lattice_placement_with_offset(41)
        .build()
        .unwrap();
    let p = s.params();
    let proto = CountingProtocol::starved(s.grid(), p, p.m0() + 1);
    let mut sim = s.counting_sim(proto);
    let out = sim.run_oracle(p.mf);
    assert_eq!(out.accepted_true, 84, "square (80 good) + 4 gray nodes");
    assert!(out.is_correct() && !out.is_complete());

    let grid = s.grid();
    let p_node = grid.id_of(grid.wrap(5, 1));
    assert_eq!(sim.decided_neighbors(p_node), 33);
    assert_eq!(sim.tally_true(p_node) + sim.tally_wrong(p_node), 1947);
    assert_eq!(sim.tally_wrong(p_node), 947);
    assert_eq!(sim.tally_true(p_node), 1000); // threshold - 1: blocked
}

/// Theorem 4's budget formula example.
#[test]
fn theorem4_formula() {
    assert_eq!(theorem4_budget(1024, 64, 2, 8, 1 << 20), 2 * 17 * 41 * 78);
}

/// Corollary 1's two bounds never overlap and bracket the simulated
/// stripe threshold.
#[test]
fn corollary1_bracketing() {
    for r in 1..5u32 {
        for m in [10u64, 58, 200] {
            for mf in [10u64, 1000] {
                let fail = corollary1_min_defeating_t(r, m, mf);
                let ok = corollary1_max_tolerable_t(r, m, mf);
                assert!(ok < fail, "r={r} m={m} mf={mf}");
            }
        }
    }
}

/// The unknown-mf threshold t < r(2r+1)/2.
#[test]
fn reactive_threshold_values() {
    assert_eq!(reactive_max_t(1), 1);
    assert_eq!(reactive_max_t(2), 4);
    assert_eq!(reactive_max_t(3), 10);
    assert_eq!(reactive_max_t(4), 17);
}

/// The paper's baseline-cost comparison at the Figure 2 parameters:
/// 2tmf+1 = 2001 vs 2m0 = 116, a ~17.25x saving (claim: 17.5x).
#[test]
fn baseline_ratio_figure2_parameters() {
    let p = Params::new(4, 1, 1000);
    assert_eq!(p.koo_budget(), 2001);
    assert_eq!(p.sufficient_budget(), 116);
    let ratio = p.actual_baseline_ratio();
    assert!(ratio > 17.0 && ratio <= 17.5);
}
