//! End-to-end federation (PR 8): shard a sweep across three real
//! `bftbcast-server` backends over TCP, check the reassembled rows
//! against a local run, then merge the shard stores back into one and
//! replay the whole sweep warm.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bftbcast::{BatchOptions, ScenarioFile};
use bftbcast_federate::{run_with, Arrival, FederateOptions};
use bftbcast_server::{client, Server};
use bftbcast_store::merge::merge;
use bftbcast_store::Store;

static CASE: AtomicUsize = AtomicUsize::new(0);

fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bftbcast-federation-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn scenario(name: &str) -> ScenarioFile {
    let path = format!("{}/../scenarios/{name}", env!("CARGO_MANIFEST_DIR"));
    ScenarioFile::parse(&std::fs::read_to_string(path).unwrap()).unwrap()
}

/// A backend: a serve loop on an ephemeral port over an on-disk store.
struct Backend {
    addr: String,
    dir: std::path::PathBuf,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

fn spawn_backend(tag: &str) -> Backend {
    let dir = scratch(tag);
    let store = Arc::new(Store::open(&dir).unwrap());
    let server = Server::bind("127.0.0.1:0", store, None).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve());
    Backend { addr, dir, handle }
}

fn stop(backend: Backend) -> std::path::PathBuf {
    client::shutdown(&backend.addr).unwrap();
    backend.handle.join().unwrap().unwrap();
    backend.dir
}

fn local_rows(file: &ScenarioFile) -> Vec<String> {
    let report = bftbcast::run_file_with(
        file,
        &BatchOptions {
            jobs: None,
            store: None,
        },
    )
    .unwrap();
    report.jsonl().lines().map(str::to_string).collect()
}

#[test]
fn three_backends_reproduce_the_f2_goldens_over_real_sockets() {
    let file = scenario("f2.scn");
    let backends: Vec<Backend> = (0..3).map(|i| spawn_backend(&format!("f2-{i}"))).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();
    let opts = FederateOptions::default();

    let cold = run_with(&file, &addrs, &opts, |_| {}).unwrap();
    assert_eq!(cold.points, 1);
    assert_eq!(cold.rows, local_rows(&file), "federated == local");
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 1));
    let row = &cold.rows[0];
    for needle in [
        "\"intake\":2065",
        "\"intake\":1947",
        "\"tally_wrong\":947",
        "\"accepted_true\":84",
    ] {
        assert!(row.contains(needle), "{needle} missing:\n{row}");
    }

    // Resubmitting the identical sweep replays from the shard store.
    let warm = run_with(&file, &addrs, &opts, |_| {}).unwrap();
    assert_eq!(warm.rows, cold.rows, "warm replay is bit-identical");
    assert_eq!((warm.cache_hits, warm.cache_misses), (1, 0));
    assert!(warm.arrivals.iter().all(|a: &Arrival| a.warm));

    for backend in backends {
        std::fs::remove_dir_all(stop(backend)).ok();
    }
}

#[test]
fn sharded_sweep_merges_back_into_one_warm_store() {
    let file = scenario("t1.scn");
    let backends: Vec<Backend> = (0..3).map(|i| spawn_backend(&format!("t1-{i}"))).collect();
    let addrs: Vec<String> = backends.iter().map(|b| b.addr.clone()).collect();

    let report = run_with(&file, &addrs, &FederateOptions::default(), |_| {}).unwrap();
    let expected = local_rows(&file);
    assert_eq!(report.points, expected.len());
    assert_eq!(report.rows, expected, "reassembly preserves sweep order");
    assert_eq!(report.failovers, 0);
    let completed: usize = report.backends.iter().map(|b| b.completed).sum();
    assert_eq!(
        completed, report.points,
        "every point answered exactly once"
    );
    assert!(
        report.backends.iter().filter(|b| b.completed > 0).count() >= 2,
        "rendezvous should spread a 5-point sweep over several backends: {:?}",
        report.backends
    );

    // Drain the backends (shutdown fsyncs each shard store) and merge
    // the shards into a single fresh store.
    let shards: Vec<std::path::PathBuf> = backends.into_iter().map(stop).collect();
    let merged = scratch("t1-merged");
    let mut imported = 0;
    for shard in &shards {
        imported += merge(&merged, shard).unwrap().imported;
    }
    assert_eq!(imported, report.points, "shards union to the full sweep");

    // The merged store replays the whole sweep warm, bit-identically.
    let store = Store::open(&merged).unwrap();
    let replay = bftbcast::run_file_with(
        &file,
        &BatchOptions {
            jobs: None,
            store: Some(&store),
        },
    )
    .unwrap();
    assert_eq!(
        (replay.cache_hits, replay.cache_misses),
        (report.points, 0),
        "hits == points, misses == 0"
    );
    let rows: Vec<String> = replay.jsonl().lines().map(str::to_string).collect();
    assert_eq!(rows, expected, "merged-store replay is bit-identical");

    for dir in shards.into_iter().chain([merged]) {
        std::fs::remove_dir_all(dir).ok();
    }
}
