//! Schedule-exploration harness for the rbc runtime's adversary axes.
//!
//! The grid: every [`ScheduleKind`] × every [`ByzantineBehavior`] ×
//! three fault budgets × seeded repetitions — ≥ 256 points by default
//! (5 × 4 × 3 × 5 = 300), each a full message-level run with randomly
//! placed Byzantine nodes. Every point is held to the RBC contract:
//!
//! * **agreement + validity** — for Bracha and CTRBC with at most `t`
//!   faults, every good node that delivers, delivers the source's
//!   genuine payload (variant 0), whatever the schedule plays and
//!   whatever the faulty nodes do;
//! * **totality** — at quiescence with a connected good subgraph,
//!   either every good node delivered or none did;
//! * the flood baseline is held to totality only — equivocators are
//!   *expected* to split it, which is the contrast the RBC quorums pay
//!   for.
//!
//! Two cross-cutting checks complete the layer: a metamorphic property
//! (*what* is delivered — and even the message/wire totals — is
//! schedule-invariant under a mute adversary; *when* is not), and a
//! differential check that the default seeded schedule still
//! reproduces `scenarios/rbc-compare.scn`'s pinned goldens
//! bit-identically.
//!
//! The soak dial: `BFTBCAST_RBC_SOAK_SEEDS=N` multiplies the seeds per
//! combination (CI runs 1024 on the release profile).
//!
//! [`ScheduleKind`]: bftbcast::rbc::ScheduleKind
//! [`ByzantineBehavior`]: bftbcast::rbc::ByzantineBehavior

use bftbcast::net::Grid;
use bftbcast::prelude::*;
use bftbcast::rbc::{ByzantineBehavior, RbcConfig, RbcProtocol, RbcSim, ScheduleKind};

/// Seeds per (schedule, behavior, t) combination. 5 × 4 × 3 = 60
/// combinations, so the default 5 seeds explore 300 points; the soak
/// variable spreads its budget across the combinations.
fn seeds_per_combo() -> u64 {
    std::env::var("BFTBCAST_RBC_SOAK_SEEDS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok())
        .map_or(5, |n| (n / 60).max(5))
}

/// SplitMix64 — one point seed fans out into placement and payload.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The torus per fault budget, all satisfying `n ≥ 3t + 1` with the
/// echo quorum reachable by good nodes alone: a multi-hop r = 1 torus,
/// the complete 5x5 graph, and a mid-degree 7x7.
fn grid_for(t: u32) -> Grid {
    match t {
        1 => Grid::new(7, 7, 1).unwrap(),
        2 => Grid::new(5, 5, 2).unwrap(),
        _ => Grid::new(7, 7, 2).unwrap(),
    }
}

/// `t` distinct Byzantine nodes, never the source (node 0).
fn place_bad(st: &mut u64, n: usize, t: u32) -> Vec<usize> {
    let mut bad = Vec::new();
    while bad.len() < t as usize {
        let u = 1 + (next(st) % (n as u64 - 1)) as usize;
        if !bad.contains(&u) {
            bad.push(u);
        }
    }
    bad
}

/// Whether the good subgraph is connected (BFS from the good source)
/// — the hypothesis under which totality is asserted.
fn good_subgraph_connected(sim: &RbcSim, n: usize) -> bool {
    let mut seen = vec![false; n];
    let mut queue = vec![0usize];
    seen[0] = true;
    let mut reached = 1;
    while let Some(u) = queue.pop() {
        for &w in sim.topology().neighbors_of(u) {
            if !seen[w] && sim.is_good(w) {
                seen[w] = true;
                reached += 1;
                queue.push(w);
            }
        }
    }
    reached == (0..n).filter(|&u| sim.is_good(u)).count()
}

fn run(grid: Grid, bad: &[usize], cfg: RbcConfig) -> RbcSim {
    let mut sim = RbcSim::new(grid, 0, bad, cfg);
    sim.begin();
    while sim.step_wave() {}
    sim
}

/// The full adversary matrix. Every point must drain, and the RBC
/// protocols must hold agreement, validity, and totality against
/// every schedule × behavior combination at budget.
#[test]
fn schedule_behavior_matrix_holds_the_rbc_contract() {
    let seeds = seeds_per_combo();
    let mut points = 0u64;
    for schedule in ScheduleKind::ALL {
        for behavior in ByzantineBehavior::ALL {
            for t in [1u32, 2, 3] {
                for seed in 0..seeds {
                    let grid = grid_for(t);
                    let n = grid.node_count();
                    let mut st = seed
                        ^ (u64::from(t) << 8)
                        ^ ((schedule as u64) << 16)
                        ^ ((behavior as u64) << 24);
                    let bad = place_bad(&mut st, n, t);
                    // Rotate the protocol through the seed axis so all
                    // three share the matrix.
                    let protocol = match seed % 3 {
                        0 => RbcProtocol::Bracha,
                        1 => RbcProtocol::Ctrbc,
                        _ => RbcProtocol::Counting,
                    };
                    let cfg = RbcConfig {
                        protocol,
                        t,
                        payload_bits: 256,
                        max_waves: 10_000,
                        seed: next(&mut st),
                        schedule,
                        behavior,
                    };
                    let sim = run(grid, &bad, cfg);
                    let label = format!("{schedule:?}/{behavior:?} t={t} seed={seed} bad={bad:?}");
                    assert!(sim.quiescent(), "must drain: {label}");
                    let delivered_goods = (0..n)
                        .filter(|&u| sim.is_good(u) && sim.delivered_variant(u).is_some())
                        .count();
                    let goods = (0..n).filter(|&u| sim.is_good(u)).count();
                    let connected = good_subgraph_connected(&sim, n);
                    if protocol != RbcProtocol::Counting {
                        // Agreement + validity: only the genuine
                        // variant is ever delivered at budget.
                        for u in 0..n {
                            if sim.is_good(u) {
                                if let Some(v) = sim.delivered_variant(u) {
                                    assert_eq!(v, 0, "validity: node {u}, {label}");
                                }
                            }
                        }
                    }
                    // Totality (flood included): at quiescence on a
                    // connected good subgraph, delivery is all good
                    // nodes or none.
                    if connected {
                        assert!(
                            delivered_goods == goods || delivered_goods == 0,
                            "totality: {delivered_goods}/{goods} delivered, {label}"
                        );
                        assert_eq!(
                            delivered_goods, goods,
                            "a good source must reach everyone: {label}"
                        );
                    }
                    points += 1;
                }
            }
        }
    }
    assert!(
        points >= 256,
        "the matrix must explore ≥256 points, got {points}"
    );
}

/// Metamorphic property: under a mute adversary, *what* the run
/// produces — per-node delivered variants, total messages, total wire
/// bits — is invariant across every delivery schedule; only *when*
/// (the wave count) may move. At least one point must actually move,
/// or the schedules would be dead code.
#[test]
fn delivery_content_is_schedule_invariant_but_timing_is_not() {
    let mut some_timing_differs = false;
    for t in [1u32, 2, 3] {
        for protocol in [RbcProtocol::Bracha, RbcProtocol::Ctrbc] {
            let grid = grid_for(t);
            let n = grid.node_count();
            let mut st = 0xadd5_c0de ^ u64::from(t);
            let bad = place_bad(&mut st, n, t);
            let cfg = |schedule| RbcConfig {
                protocol,
                t,
                payload_bits: 256,
                max_waves: 10_000,
                seed: 7,
                schedule,
                behavior: ByzantineBehavior::Mute,
            };
            let baseline = run(grid.clone(), &bad, cfg(ScheduleKind::Seeded));
            let base = baseline.outcome();
            for schedule in ScheduleKind::ALL {
                let sim = run(grid.clone(), &bad, cfg(schedule));
                let o = sim.outcome();
                let label = format!("{protocol:?} t={t} {schedule:?}");
                assert_eq!(o.delivered, base.delivered, "{label}");
                assert_eq!(o.messages, base.messages, "{label}");
                assert_eq!(o.wire_bits, base.wire_bits, "{label}");
                for u in 0..n {
                    assert_eq!(
                        sim.delivered_variant(u),
                        baseline.delivered_variant(u),
                        "{label} node {u}"
                    );
                }
                some_timing_differs |= o.waves != base.waves;
            }
        }
    }
    assert!(
        some_timing_differs,
        "deferring schedules must stretch at least one run's wave count"
    );
}

/// Differential check against PR 9: the default schedule (`seeded`)
/// and behavior (`mute`) reproduce `scenarios/rbc-compare.scn`'s
/// pinned goldens bit-identically, and a programmatic run with the
/// axes spelled out explicitly matches the declarative file.
#[test]
fn seeded_schedule_reproduces_the_pinned_rbc_compare_goldens() {
    let path = format!(
        "{}/../scenarios/rbc-compare.scn",
        env!("CARGO_MANIFEST_DIR")
    );
    let text = std::fs::read_to_string(&path).expect("rbc-compare.scn exists");
    let file = ScenarioFile::parse(&text).expect("rbc-compare parses");
    let report = run_file(&file).expect("rbc-compare runs");
    let golden = [
        ("counting", 1784u64, 7_335_808u64, 9u64),
        ("bracha", 797_448, 3_279_106_176, 20),
        ("ctrbc", 801_016, 681_489_784, 20),
    ];
    for (result, (name, messages, wire_bits, waves)) in report.results.iter().zip(golden) {
        let o = result.outcome.as_rbc().unwrap_or_else(|| panic!("{name}"));
        assert_eq!(o.messages, messages, "{name} messages");
        assert_eq!(o.wire_bits, wire_bits, "{name} wire bits");
        assert_eq!(o.waves, waves, "{name} waves");
    }

    // The same point, constructed directly with the adversary axes
    // explicit instead of defaulted.
    let grid = Grid::new(15, 15, 1).unwrap();
    let bad = vec![grid.id_at(3, 3), grid.id_at(10, 11)];
    let sim = run(
        grid,
        &bad,
        RbcConfig {
            protocol: RbcProtocol::Bracha,
            t: 2,
            payload_bits: 4096,
            max_waves: 10_000,
            seed: 7,
            schedule: ScheduleKind::Seeded,
            behavior: ByzantineBehavior::Mute,
        },
    );
    let o = sim.outcome();
    assert_eq!(
        (o.messages, o.wire_bits, o.waves),
        (797_448, 3_279_106_176, 20),
        "explicit seeded/mute must equal the defaulted golden"
    );
}

/// The contrast the quorums buy: an equivocating *source* is
/// guaranteed to split the flood baseline's agreement down the id
/// halves, while Bracha under the same attack delivers nothing rather
/// than something wrong.
#[test]
fn equivocating_source_splits_the_flood_but_never_bracha() {
    let grid = Grid::new(5, 5, 2).unwrap();
    let cfg = |protocol| RbcConfig {
        protocol,
        t: 1,
        payload_bits: 256,
        max_waves: 10_000,
        seed: 7,
        schedule: ScheduleKind::Seeded,
        behavior: ByzantineBehavior::Equivocate,
    };
    // Byzantine source: node 0 equivocates from the first wave.
    let flood = run(grid.clone(), &[0], cfg(RbcProtocol::Counting));
    let variants: Vec<u8> = (1..25).filter_map(|u| flood.delivered_variant(u)).collect();
    assert!(
        variants.contains(&0) && variants.contains(&1),
        "the flood must split down the id halves: {variants:?}"
    );
    let bracha = run(grid, &[0], cfg(RbcProtocol::Bracha));
    for u in 1..25 {
        assert_eq!(
            bracha.delivered_variant(u),
            None,
            "neither SEND half reaches an echo quorum, so nobody delivers"
        );
    }
}
