//! End-to-end tests for the service layer: a real `Server` on an
//! ephemeral port, the real `scenarios/f2.scn` file, the real client —
//! the acceptance gate for `bftbcast serve`.
//!
//! The contract under test (mirrored by `scripts/smoke_serve.sh` in
//! CI, which drives the same flow through the built binary):
//!
//! 1. submitting f2.scn reproduces the Figure 2 goldens
//!    (2065 / 1947 / 947, stall 84) bit-identically;
//! 2. an immediate resubmit completes with **zero engine runs** — the
//!    job reports `cache_hits == points, cache_misses == 0` and the
//!    store grows by nothing.

use std::sync::Arc;

use bftbcast::json::Json;
use bftbcast_server::{client, Server};
use bftbcast_store::Store;

fn read_scn(rel: &str) -> String {
    let path = format!("{}/../{rel}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"))
}

fn start(store: Arc<Store>) -> (String, std::thread::JoinHandle<std::io::Result<()>>) {
    let server = Server::bind("127.0.0.1:0", store, None).expect("bind ephemeral port");
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve());
    (addr, handle)
}

fn field_u64(line: &str, key: &str) -> u64 {
    Json::parse(line)
        .unwrap_or_else(|e| panic!("bad JSON line {line:?}: {e}"))
        .get(key)
        .and_then(Json::as_u64)
        .unwrap_or_else(|| panic!("no u64 {key:?} in {line}"))
}

/// The acceptance criterion, verbatim: f2 goldens over the wire, then
/// a resubmit that is pure cache.
#[test]
fn f2_over_the_wire_then_warm_resubmit_is_all_hits() {
    let store = Arc::new(Store::in_memory());
    let (addr, handle) = start(Arc::clone(&store));
    let f2 = read_scn("scenarios/f2.scn");

    // Cold submit: the engines actually run.
    let job = client::submit(&addr, &f2).expect("submit f2");
    let (rows, trailer) = client::results(&addr, &job).expect("results");
    assert_eq!(rows.len(), 1, "f2 is a single point");
    for needle in [
        "\"scenario\":\"f2\"",
        "\"intake\":2065",
        "\"intake\":1947",
        "\"tally_wrong\":947",
        "\"accepted_true\":84",
        "\"complete\":false",
    ] {
        assert!(
            rows[0].contains(needle),
            "{needle} missing from {}",
            rows[0]
        );
    }
    assert_eq!(field_u64(&trailer, "cache_misses"), 1);
    assert_eq!(field_u64(&trailer, "cache_hits"), 0);
    let entries_after_cold = store.len();
    assert_eq!(entries_after_cold, 1);

    // Warm resubmit: zero engine runs — hits == points, misses == 0.
    let job2 = client::submit(&addr, &f2).expect("resubmit f2");
    assert_ne!(job2, job, "a fresh job id");
    let (rows2, trailer2) = client::results(&addr, &job2).expect("warm results");
    assert_eq!(rows2, rows, "warm rows are bit-identical to cold rows");
    assert_eq!(field_u64(&trailer2, "cache_hits"), 1, "hits == points");
    assert_eq!(field_u64(&trailer2, "cache_misses"), 0, "misses == 0");
    assert_eq!(store.len(), entries_after_cold, "the store grew by nothing");

    // STATS agrees with the per-job accounting.
    let stats = client::stats(&addr).expect("stats");
    assert_eq!(field_u64(&stats, "store_entries"), 1);
    assert_eq!(field_u64(&stats, "store_hits"), 1);
    assert_eq!(field_u64(&stats, "store_misses"), 1);
    assert_eq!(field_u64(&stats, "jobs_done"), 2);

    client::shutdown(&addr).expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// The rbc engine flows through serve/store like every other engine:
/// a cold submit of the three-protocol comparison runs 3 points, and a
/// warm resubmit replays all of them from the store — hits == points,
/// misses == 0, bit-identical rows.
#[test]
fn rbc_compare_warm_resubmit_is_all_hits() {
    let store = Arc::new(Store::in_memory());
    let (addr, handle) = start(Arc::clone(&store));
    let scn = read_scn("scenarios/rbc-compare.scn");

    let job = client::submit(&addr, &scn).expect("submit rbc-compare");
    let (rows, trailer) = client::results(&addr, &job).expect("results");
    assert_eq!(rows.len(), 3, "counting | bracha | ctrbc");
    for (row, protocol) in rows.iter().zip(["counting", "bracha", "ctrbc"]) {
        assert!(row.contains("\"kind\":\"rbc\""), "{row}");
        assert!(
            row.contains(&format!("\"protocol\":\"{protocol}\"")),
            "{row}"
        );
        assert!(row.contains("\"reliable\":true"), "{row}");
    }
    assert_eq!(field_u64(&trailer, "cache_misses"), 3);
    assert_eq!(field_u64(&trailer, "cache_hits"), 0);
    assert_eq!(store.len(), 3);

    let job2 = client::submit(&addr, &scn).expect("resubmit rbc-compare");
    let (rows2, trailer2) = client::results(&addr, &job2).expect("warm results");
    assert_eq!(rows2, rows, "warm rows are bit-identical to cold rows");
    assert_eq!(field_u64(&trailer2, "cache_hits"), 3, "hits == points");
    assert_eq!(field_u64(&trailer2, "cache_misses"), 0, "misses == 0");
    assert_eq!(store.len(), 3, "the store grew by nothing");

    client::shutdown(&addr).expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// The acceptance criterion for the spec layer: submitting f2 as
/// `.scn` text and as an inline spec JSON body yields bit-identical
/// JSONL goldens and identical store keys — a warm cache from one
/// form serves the other with hits == points, misses == 0.
#[test]
fn scn_and_inline_spec_submissions_share_store_entries() {
    let store = Arc::new(Store::in_memory());
    let (addr, handle) = start(Arc::clone(&store));
    let f2 = read_scn("scenarios/f2.scn");

    // Cold: the .scn form computes the goldens.
    let job = client::submit(&addr, &f2).expect("submit .scn");
    let (rows, trailer) = client::results(&addr, &job).expect("results");
    assert_eq!(field_u64(&trailer, "cache_misses"), 1);
    for needle in ["\"intake\":2065", "\"intake\":1947", "\"tally_wrong\":947"] {
        assert!(
            rows[0].contains(needle),
            "{needle} missing from {}",
            rows[0]
        );
    }
    assert!(rows[0].contains("\"accepted_true\":84"), "{}", rows[0]);
    assert_eq!(store.len(), 1);

    // The same configuration as canonical spec JSON (the conversion the
    // `bftbcast spec` verb performs).
    let file = bftbcast::ScenarioFile::parse(&f2).unwrap();
    let specs = file.specs().unwrap();
    assert_eq!(specs.len(), 1, "f2 is one point");
    let spec_json = specs[0].to_json();

    // Warm: the inline-spec form is served entirely from the .scn
    // form's cache — identical keys, zero engine runs, identical rows.
    let job2 = client::submit_spec(&addr, &spec_json).expect("submit spec");
    let (rows2, trailer2) = client::results(&addr, &job2).expect("spec results");
    assert_eq!(rows2, rows, "bit-identical JSONL across submission forms");
    assert_eq!(field_u64(&trailer2, "cache_hits"), 1, "hits == points");
    assert_eq!(field_u64(&trailer2, "cache_misses"), 0, "misses == 0");
    assert_eq!(store.len(), 1, "no new store entries: identical keys");

    // And the reverse direction: a fresh server warmed by the spec form
    // serves the .scn form from cache.
    client::shutdown(&addr).expect("shutdown");
    handle.join().unwrap().unwrap();
    let store = Arc::new(Store::in_memory());
    let (addr, handle) = start(Arc::clone(&store));
    let job = client::submit_spec(&addr, &spec_json).expect("spec first");
    let (rows3, _) = client::results(&addr, &job).expect("spec cold results");
    assert_eq!(rows3, rows);
    let job = client::submit(&addr, &f2).expect(".scn second");
    let (_, trailer4) = client::results(&addr, &job).expect(".scn warm results");
    assert_eq!(field_u64(&trailer4, "cache_hits"), 1);
    assert_eq!(field_u64(&trailer4, "cache_misses"), 0);
    client::shutdown(&addr).expect("shutdown");
    handle.join().unwrap().unwrap();
}

/// Malformed or invalid inline specs are rejected at submit time with
/// a named error, exactly like scenario text.
#[test]
fn bad_inline_specs_are_rejected_at_submit() {
    let (addr, handle) = start(Arc::new(Store::in_memory()));
    for (label, line) in [
        ("not an object", "{\"cmd\":\"submit\",\"spec\":[1,2]}"),
        (
            "unknown field",
            "{\"cmd\":\"submit\",\"spec\":{\"width\":15,\"height\":15,\"r\":1,\"warp\":9}}",
        ),
        (
            "missing r",
            "{\"cmd\":\"submit\",\"spec\":{\"width\":15,\"height\":15}}",
        ),
        (
            "both forms",
            "{\"cmd\":\"submit\",\"scenario\":\"x\",\"spec\":{}}",
        ),
    ] {
        let lines = client::request(&addr, line).unwrap();
        assert!(lines[0].contains("\"ok\":false"), "{label}: {lines:?}");
    }
    // A valid minimal spec still goes through afterwards.
    let job = client::submit_spec(
        &addr,
        "{\"width\":15,\"height\":15,\"r\":1,\"mf\":4,\"placement\":{\"kind\":\"lattice\"}}",
    )
    .unwrap();
    let (rows, _) = client::results(&addr, &job).unwrap();
    assert_eq!(rows.len(), 1);
    assert!(rows[0].contains("\"complete\":true"), "{}", rows[0]);
    client::shutdown(&addr).unwrap();
    handle.join().unwrap().unwrap();
}

/// The server's rows are byte-for-byte what the offline batch runner
/// prints — a client cannot tell whether a row was computed or cached,
/// or whether it came from `serve` or `run --scenario`.
#[test]
fn served_rows_match_offline_run_exactly() {
    let f2 = read_scn("scenarios/f2.scn");
    let file = bftbcast::ScenarioFile::parse(&f2).unwrap();
    let offline = bftbcast::run_file(&file).unwrap().jsonl();

    let (addr, handle) = start(Arc::new(Store::in_memory()));
    let job = client::submit(&addr, &f2).unwrap();
    let (rows, _) = client::results(&addr, &job).unwrap();
    assert_eq!(rows.join("\n") + "\n", offline);
    client::shutdown(&addr).unwrap();
    handle.join().unwrap().unwrap();
}

/// A file-backed store outlives the server: a second server process
/// (simulated by a second `Server` on the same directory) starts warm.
#[test]
fn store_directory_survives_server_restarts() {
    let dir = std::env::temp_dir().join(format!(
        "bftbcast-service-test-store-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    let mini = concat!(
        "name = \"mini\"\n",
        "[topology]\nside = 15\nr = 1\n",
        "[faults]\nt = 1\nmf = 4\n",
        "[placement]\nkind = \"lattice\"\n",
        "[protocol]\nkind = \"starved\"\nm = 4\n",
        "[sweep]\nm = [2, 4, 8]\n",
    );

    let (addr, handle) = start(Arc::new(Store::open(&dir).unwrap()));
    let job = client::submit(&addr, mini).unwrap();
    let (_, trailer) = client::results(&addr, &job).unwrap();
    assert_eq!(field_u64(&trailer, "cache_misses"), 3);
    client::shutdown(&addr).unwrap();
    handle.join().unwrap().unwrap();

    // "Restart": a fresh Server over the same directory.
    let (addr, handle) = start(Arc::new(Store::open(&dir).unwrap()));
    let job = client::submit(&addr, mini).unwrap();
    let (_, trailer) = client::results(&addr, &job).unwrap();
    assert_eq!(field_u64(&trailer, "cache_hits"), 3, "warm across restart");
    assert_eq!(field_u64(&trailer, "cache_misses"), 0);
    client::shutdown(&addr).unwrap();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}

/// Concurrent submitters of the same scenario: the single-flight store
/// means every point is computed at most once across both jobs.
#[test]
fn concurrent_identical_submissions_share_computes() {
    let store = Arc::new(Store::in_memory());
    let (addr, handle) = start(Arc::clone(&store));
    let mini = concat!(
        "[topology]\nside = 15\nr = 1\n",
        "[faults]\nt = 1\nmf = 4\n",
        "[protocol]\nkind = \"starved\"\nm = 4\n",
        "[sweep]\nm = [2, 4, 8, 16]\n",
    );
    let submitters: Vec<_> = (0..4)
        .map(|_| {
            let addr = addr.clone();
            std::thread::spawn(move || {
                let job = client::submit(&addr, mini).unwrap();
                client::results(&addr, &job).unwrap()
            })
        })
        .collect();
    let results: Vec<_> = submitters.into_iter().map(|h| h.join().unwrap()).collect();
    for (rows, _) in &results[1..] {
        assert_eq!(rows, &results[0].0, "every job sees identical rows");
    }
    assert_eq!(store.len(), 4, "4 distinct points, computed once each");
    let total_misses: u64 = results
        .iter()
        .map(|(_, t)| field_u64(t, "cache_misses"))
        .sum();
    assert_eq!(total_misses, 4, "no point was ever computed twice");
    client::shutdown(&addr).unwrap();
    handle.join().unwrap().unwrap();
}
