//! Property-based tests for the extension systems, including an
//! independent cross-validation of the crash engine against plain
//! graph reachability.

use bftbcast::prelude::*;
use bftbcast::protocols::agreement::{self, DEFAULT_VALUE};
use proptest::prelude::*;

/// Independent oracle: BFS over good nodes with L∞ radius `r` hops.
/// With crash-only faults and budget 1 the engine must decide exactly
/// the reachable good set.
fn reachable_good(grid: &Grid, source: NodeId, dead: &[NodeId]) -> Vec<bool> {
    let mut is_dead = vec![false; grid.node_count()];
    for &d in dead {
        is_dead[d] = true;
    }
    let mut seen = vec![false; grid.node_count()];
    let mut queue = std::collections::VecDeque::new();
    seen[source] = true;
    queue.push_back(source);
    while let Some(u) = queue.pop_front() {
        for v in grid.neighbors(u) {
            if !seen[v] && !is_dead[v] {
                seen[v] = true;
                queue.push_back(v);
            }
        }
    }
    seen
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Crash engine == BFS reachability, for random crash sets.
    #[test]
    fn crash_engine_matches_graph_reachability(
        seed in any::<u64>(),
        deaths in 1usize..60,
        r in 1u32..3,
    ) {
        let side = 6 * (2 * r + 1);
        let grid = Grid::new(side, side, r).unwrap();
        // Random distinct crash nodes (never the source 0).
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut dead: Vec<NodeId> = (0..deaths)
            .map(|_| rng.random_range(1..grid.node_count()))
            .collect();
        dead.sort_unstable();
        dead.dedup();

        let mut sim = HybridSim::new(grid.clone(), crash_only_protocol(&grid), 0)
            .with_crash_nodes(&dead, CrashBehavior::Immediate);
        let out = sim.run(0);
        prop_assert!(out.is_correct());

        let reachable = reachable_good(&grid, 0, &dead);
        for u in grid.nodes() {
            if dead.contains(&u) {
                continue;
            }
            let decided = sim.accepted(u) == Some(Value::TRUE);
            prop_assert_eq!(
                decided, reachable[u],
                "node {} decided={} reachable={}", u, decided, reachable[u]
            );
        }
    }

    /// Majority acceptance is safe whenever the quorum is at least
    /// 2*t*mf + 1, for random placements and parameters.
    #[test]
    fn majority_quorum_2tmf1_is_always_safe(
        seed in any::<u64>(),
        t in 1u32..3,
        mf in 1u64..12,
    ) {
        let r = 2u32;
        let side = (2 * r + 1) * 3;
        let s = Scenario::builder(side, side, r)
            .faults(t, mf)
            .random_placement(10, seed)
            .build()
            .unwrap();
        let quorum = 2 * u64::from(t) * mf + 1;
        let proto = CountingProtocol::starved(s.grid(), s.params(), quorum);
        let mut sim = s.counting_sim(proto);
        let out = sim.run_majority_oracle(mf, quorum);
        prop_assert_eq!(out.wrong_accepts, 0, "quorum {} forged", quorum);
    }

    /// `leading_with_margin` always returns a value whose tally is
    /// maximal and leads the runner-up by at least the margin.
    #[test]
    fn leading_with_margin_is_sound(
        tallies in proptest::collection::vec((1u64..8, 0u64..40), 0..8),
        margin in 0u64..10,
    ) {
        // The documented contract: callers pass aggregated tallies
        // (one entry per value).
        let mut agg = std::collections::BTreeMap::new();
        for (v, n) in tallies {
            *agg.entry(v).or_insert(0u64) += n;
        }
        let tallies: Vec<(Value, u64)> =
            agg.into_iter().map(|(v, n)| (Value(v), n)).collect();
        if let Some(winner) = agreement::leading_with_margin(&tallies, margin) {
            let win_tally: u64 = tallies
                .iter()
                .filter(|&&(v, _)| v == winner)
                .map(|&(_, n)| n)
                .next()
                .unwrap_or(0);
            for &(v, n) in &tallies {
                if v != winner {
                    prop_assert!(
                        win_tally >= n + margin.max(1),
                        "winner {winner:?}@{win_tally} vs {v:?}@{n}, margin {margin}"
                    );
                }
            }
        }
    }

    /// The proven-mode decision function never decides a value absent
    /// from the entries, and perturbing up to t entries never yields two
    /// different decided values.
    #[test]
    fn decide_vector_sound_under_perturbation(
        entries in proptest::collection::vec(1u64..5, 1..24),
        t in 0u32..3,
        flips in proptest::collection::vec((0usize..24, 1u64..5), 0..3),
    ) {
        let base: Vec<Value> = entries.iter().map(|&v| Value(v)).collect();
        let a = agreement::decide_vector(&base, t);
        if a != DEFAULT_VALUE {
            prop_assert!(base.contains(&a), "decided a value nobody proposed");
        }
        // Perturb at most t entries.
        let mut other = base.clone();
        for &(idx, v) in flips.iter().take(t as usize) {
            if idx < other.len() {
                other[idx] = Value(v);
            }
        }
        let b = agreement::decide_vector(&other, t);
        if a != DEFAULT_VALUE && b != DEFAULT_VALUE {
            prop_assert_eq!(a, b, "two members decided differently");
        }
    }

    /// Energy model sanity: lifetime is antitone in quota and in message
    /// width.
    #[test]
    fn energy_lifetime_is_antitone(
        quota in 1u64..500,
        bits in 8u64..2048,
    ) {
        use bftbcast::protocols::energy::EnergyModel;
        let m = EnergyModel::mica2_default();
        let base = m.node_ledger(quota, bits);
        let more_msgs = m.node_ledger(quota + 10, bits);
        let more_bits = m.node_ledger(quota, bits + 64);
        prop_assert!(more_msgs.lifetime_broadcasts <= base.lifetime_broadcasts);
        prop_assert!(more_bits.lifetime_broadcasts <= base.lifetime_broadcasts);
        prop_assert!(base.tx_j > 0.0 && base.rx_j > 0.0);
    }

    /// Any run's SVG map is well-formed with exactly one rect per node,
    /// under random placements.
    #[test]
    fn svg_map_is_structurally_sound(seed in any::<u64>(), count in 0usize..20) {
        let s = Scenario::builder(12, 12, 1)
            .faults(2, 3)
            .random_placement(count, seed)
            .build()
            .unwrap();
        let proto = CountingProtocol::protocol_b(s.grid(), s.params());
        let mut sim = s.counting_sim(proto);
        sim.run_oracle(s.params().mf);
        let svg = GridMap::from_counting_sim(&sim, s.source(), 8).render("prop");
        prop_assert_eq!(svg.matches("<rect").count(), 144);
        prop_assert!(svg.starts_with("<svg"));
        prop_assert!(svg.trim_end().ends_with("</svg>"));
    }
}

/// Deterministic companion to the BFS property: the engine and BFS also
/// agree when crash nodes form a barrier (the disconnected case).
#[test]
fn crash_engine_matches_reachability_with_barrier() {
    let grid = Grid::new(20, 20, 2).unwrap();
    let mut dead = crash_stripe(&grid, 6, 2);
    dead.extend(crash_stripe(&grid, 14, 2));
    dead.sort_unstable();
    dead.dedup();
    let mut sim = HybridSim::new(grid.clone(), crash_only_protocol(&grid), 0)
        .with_crash_nodes(&dead, CrashBehavior::Immediate);
    sim.run(0);
    let reachable = reachable_good(&grid, 0, &dead);
    for u in grid.nodes() {
        if dead.contains(&u) {
            continue;
        }
        assert_eq!(
            sim.accepted(u) == Some(Value::TRUE),
            reachable[u],
            "node {u}"
        );
    }
}
