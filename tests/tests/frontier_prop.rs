//! Frontier-vs-dense property suite for the worklist kernel.
//!
//! Every engine (counting, crash, slot, agreement) is driven through
//! [`DenseOracle`] on SplitMix64-generated random specs — ≥128 cases
//! per engine covering every adversary placement and strategy the spec
//! layer knows, mixed radio ranges, and torus dimensions including the
//! degenerate shapes where the frontier must wrap correctly (exact
//! `2r+1` tori, i.e. `r ≥ dim/2`, and thin strips pinned at the wrap
//! minimum). The harness asserts, after **every** wave, that outcomes,
//! per-node probes and the step flag are bit-identical between
//! [`ScanMode::Frontier`] and [`ScanMode::Dense`] — per-wave counters
//! included, not just final results.
//!
//! [`DenseOracle`]: bftbcast::sim::DenseOracle
//! [`ScanMode::Frontier`]: bftbcast::net::ScanMode::Frontier
//! [`ScanMode::Dense`]: bftbcast::net::ScanMode::Dense

use bftbcast::prelude::Grid;
use bftbcast::scenario_file::{
    AdversarySpec, AgreementSpec, CrashNodesSpec, CrashSpec, PlacementSpec, ProtocolSpec,
    ReactiveSpec, SourceSpec,
};
use bftbcast::sim::crash::CrashBehavior;
use bftbcast::sim::engine::AgreementMode;
use bftbcast::sim::slot::ReactiveAdversary;
use bftbcast::sim::DenseOracle;
use bftbcast::spec::EngineSpec;

/// Cases per engine (the ISSUE floor is 100).
const CASES: usize = 128;

/// SplitMix64 — one case seed fans out into every spec field.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, n: u64) -> u64 {
    next(state) % n
}

/// Distinct random cells (the explicit-placement path feeds engine
/// constructors that reject duplicate bad nodes).
fn cells(st: &mut u64, w: u32, h: u32, max: u64) -> Vec<(u32, u32)> {
    let mut v: Vec<(u32, u32)> = (0..pick(st, max + 1))
        .map(|_| (pick(st, u64::from(w)) as u32, pick(st, u64::from(h)) as u32))
        .collect();
    v.sort_unstable();
    v.dedup();
    v
}

/// Torus dimensions mixing the general case with the degenerate shapes
/// the frontier kernel must wrap: exact `2r+1` tori (every neighborhood
/// covers the whole grid minus the seed — `r ≥ dim/2`) and thin strips
/// with one dimension pinned at the wrap minimum.
fn gen_dims(st: &mut u64) -> (u32, u32, u32) {
    let r = 1 + pick(st, 2) as u32;
    let side = 2 * r + 1;
    match pick(st, 4) {
        0 => (side, side, r),
        1 => (side, side + 8 + pick(st, 20) as u32, r),
        2 => (side + 8 + pick(st, 20) as u32, side, r),
        _ => (side + pick(st, 18) as u32, side + pick(st, 18) as u32, r),
    }
}

/// One random spec for the given engine kind (0 = counting, 1 = crash,
/// 2 = slot, 3 = agreement) on the given torus: every placement
/// variant, every counting adversary/protocol, every crash behavior,
/// every reactive adversary, every agreement mode/source.
fn gen_spec(kind: u64, (width, height, r): (u32, u32, u32), st: &mut u64) -> EngineSpec {
    let t = 1 + pick(st, 2) as u32;
    let mut b = match kind {
        0 => EngineSpec::counting(width, height, r),
        1 => EngineSpec::crash(width, height, r),
        2 => EngineSpec::slot(width, height, r),
        _ => EngineSpec::agreement(width, height, r),
    };
    b = b
        .faults(t, 1 + pick(st, 24))
        .source(
            pick(st, u64::from(width)) as u32,
            pick(st, u64::from(height)) as u32,
        )
        .seed(next(st));
    // The lattice construction requires both dims divisible by 2r+1
    // (and an in-range class offset); fall back to no placement
    // elsewhere so every shape still exercises all variants it can.
    let side = 2 * r + 1;
    let lattice_ok = width % side == 0 && height % side == 0;
    b = b.placement(match pick(st, 6) {
        1 if lattice_ok => PlacementSpec::Lattice {
            offset: pick(st, u64::from(side * side - t) + 1) as u32,
        },
        0 | 1 => PlacementSpec::None,
        2 => PlacementSpec::Stripes(vec![(
            pick(st, u64::from(height)) as u32,
            t,
            pick(st, 2) == 0,
        )]),
        3 => PlacementSpec::Random {
            count: pick(st, 8) as usize,
        },
        4 => PlacementSpec::Bernoulli {
            p: pick(st, 30) as f64 / 1000.0,
        },
        _ => PlacementSpec::Explicit(cells(st, width, height, 4)),
    });
    match kind {
        0 => {
            b = match pick(st, 5) {
                0 => b.protocol_b(),
                1 => b.koo(),
                2 => b.heterogeneous(),
                3 => b.starved(pick(st, 400)),
                _ => b.majority(1 + pick(st, 24)),
            };
            // Majority pins the oracle adversary; everything else sweeps
            // all four strategies.
            if !matches!(
                b.clone().finish().map(|s| s.point().protocol),
                Ok(ProtocolSpec::Majority { .. })
            ) {
                b = b.adversary(
                    [
                        AdversarySpec::Oracle,
                        AdversarySpec::Greedy,
                        AdversarySpec::Chaos,
                        AdversarySpec::Passive,
                    ][pick(st, 4) as usize],
                );
            }
        }
        1 => {
            b = match pick(st, 5) {
                0 => b.protocol_b(),
                1 => b.koo(),
                2 => b.heterogeneous(),
                3 => b.starved(pick(st, 400)),
                _ => b.crash_only(),
            };
            let nodes = match pick(st, 2) {
                0 => CrashNodesSpec::Stripe {
                    y0: pick(st, u64::from(height)) as u32,
                    height: 1 + pick(st, 3) as u32,
                },
                _ => CrashNodesSpec::Explicit(cells(st, width, height, 4)),
            };
            let behavior = match pick(st, 3) {
                0 => CrashBehavior::Immediate,
                1 => CrashBehavior::AfterQuota,
                _ => CrashBehavior::AfterCopies(pick(st, 40)),
            };
            b = b.crash_load(CrashSpec { nodes, behavior });
        }
        2 => {
            b = b.reactive(ReactiveSpec {
                k: 1 + pick(st, 8) as usize,
                mmax: 1 + pick(st, 1 << 12),
                adversary: [
                    ReactiveAdversary::Passive,
                    ReactiveAdversary::Jammer,
                    ReactiveAdversary::Canceller,
                    ReactiveAdversary::NackForger,
                    ReactiveAdversary::WitnessForger,
                    ReactiveAdversary::Mixed,
                ][pick(st, 6) as usize],
                budget: match pick(st, 2) {
                    0 => None,
                    _ => Some(1 + pick(st, 1 << 12)),
                },
                max_rounds: 2_000 + pick(st, 8_000),
            });
        }
        _ => {
            // Proven mode's t bound holds at t = 1 for every r ≥ 1.
            let mode = if t == 1 && pick(st, 2) == 0 {
                AgreementMode::Proven
            } else {
                AgreementMode::Cheap
            };
            b = b.agreement_config(AgreementSpec {
                mode,
                source: [SourceSpec::Correct, SourceSpec::Split, SourceSpec::Silent]
                    [pick(st, 3) as usize],
                p1: pick(st, 1001) as f64 / 1000.0,
                pe: pick(st, 1001) as f64 / 1000.0,
            });
        }
    }
    b.finish().expect("generated specs are valid")
}

/// Builds the spec's engine twice and runs the lockstep harness; `None`
/// when the placement is rejected (local bound) so the caller can
/// retry with the next seed. Returns the number of lockstep steps.
fn check_case(kind: u64, dims: (u32, u32, u32), case_seed: u64) -> Option<usize> {
    let mut s = case_seed;
    let spec = gen_spec(kind, dims, &mut s);
    let (Ok(frontier), Ok(dense)) = (spec.build_engine(), spec.build_engine()) else {
        return None;
    };
    let mut oracle = DenseOracle::new(frontier, dense);
    oracle.run();
    Some(oracle.steps())
}

/// ≥ [`CASES`] random specs for one engine kind, retrying seeds whose
/// placement trips the local-bound validator. Asserts that a majority
/// of the surviving cases actually propagate for multiple waves, so
/// the equivalence is never vacuously checked on stalled runs.
fn run_cases(kind: u64, tag: &str) {
    let mut stream = 0xF407_1E55_0000_0000 + kind;
    let (mut ran, mut skipped, mut multi_wave) = (0usize, 0usize, 0usize);
    while ran < CASES {
        assert!(
            skipped < 10 * CASES,
            "{tag}: generator rejects too much (ran {ran}, skipped {skipped})"
        );
        let mut s = next(&mut stream);
        let dims = gen_dims(&mut s);
        match check_case(kind, dims, s) {
            None => skipped += 1,
            Some(steps) => {
                ran += 1;
                if steps > 2 {
                    multi_wave += 1;
                }
            }
        }
    }
    assert!(
        2 * multi_wave > CASES,
        "{tag}: most cases must propagate multiple waves ({multi_wave}/{CASES})"
    );
}

#[test]
fn counting_engine_frontier_matches_dense() {
    run_cases(0, "counting");
}

#[test]
fn crash_engine_frontier_matches_dense() {
    run_cases(1, "crash");
}

#[test]
fn slot_engine_frontier_matches_dense() {
    run_cases(2, "slot");
}

#[test]
fn agreement_engine_frontier_matches_dense() {
    run_cases(3, "agreement");
}

/// The named degenerate shapes, pinned (not left to the generator's
/// dice): exact-wrap tori where `r ≥ dim/2` and thin strips, for every
/// engine. Each shape must yield at least one buildable case that the
/// lockstep harness passes.
#[test]
fn degenerate_wrap_tori_match_dense_across_engines() {
    for dims in [(3, 3, 1), (5, 5, 2), (3, 24, 1), (24, 3, 1), (5, 40, 2)] {
        for kind in 0..4u64 {
            let mut stream = 0xDE9E_0000 + (kind << 8) + u64::from(dims.0);
            let mut checked = false;
            for _ in 0..40 {
                if check_case(kind, dims, next(&mut stream)).is_some() {
                    checked = true;
                    break;
                }
            }
            assert!(checked, "no buildable case for kind {kind} on {dims:?}");
        }
    }
}

/// Grids that cannot host a wrap-free neighborhood are rejected at
/// construction — the frontier kernel never sees a 1×N strip or a
/// dimension below `2r+1`.
#[test]
fn sub_neighborhood_grids_are_rejected() {
    assert!(Grid::new(1, 50, 1).is_err(), "1×N strip");
    assert!(Grid::new(50, 1, 1).is_err(), "N×1 strip");
    assert!(Grid::new(4, 50, 2).is_err(), "width < 2r+1");
    assert!(Grid::new(50, 4, 2).is_err(), "height < 2r+1");
    assert!(Grid::new(3, 3, 1).is_ok(), "exactly 2r+1 is the minimum");
    assert!(Grid::new(5, 5, 2).is_ok());
}
