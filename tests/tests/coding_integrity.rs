//! Integration: the coding layer's security properties through the
//! public API, including the finding-5 forgery and its frame-level fix.

use bftbcast::coding::frame::{AttackMask, Frame};
use bftbcast::coding::segment;
use bftbcast::coding::subbit::SubbitParams;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Finding 5: the paper's bare cascade accepts a deterministic forgery
/// of the all-zero message.
#[test]
fn bare_cascade_all_zero_forgery_reproduces() {
    let k = 16;
    let zeros = vec![false; k];
    let coded = segment::encode(&zeros).unwrap();
    let mut tampered = coded.clone();
    let mut start = 0;
    for &len in &segment::segment_lengths(k).unwrap() {
        tampered[start + len - 1] = true;
        start += len;
    }
    let forged = segment::verify(&tampered, k).expect("paper-faithful verify accepts");
    assert_ne!(forged, zeros);
}

/// The frame layer's sentinel closes the hole: the same chain attack on
/// an all-zero *payload* is detected.
#[test]
fn frames_reject_the_chain_attack() {
    let params = SubbitParams::with_length(20);
    let mut rng = StdRng::seed_from_u64(77);
    let k = 16;
    let frame = Frame::data(&vec![false; k], params, &mut rng);
    let lens = segment::segment_lengths(k + Frame::HEADER_BITS).unwrap();
    let mut mask = AttackMask::new(frame.coded_bits());
    let mut start = 0;
    for &len in &lens {
        mask = mask.inject_one(start + len - 1);
        start += len;
    }
    assert!(frame
        .attacked(&mask.into_masks())
        .decode_and_verify(params)
        .is_err());
}

/// Frames always round-trip cleanly for every payload pattern.
#[test]
fn frame_roundtrip_edge_payloads() {
    let params = SubbitParams::with_length(16);
    let mut rng = StdRng::seed_from_u64(3);
    for payload in [
        vec![false; 24],
        vec![true; 24],
        (0..24).map(|i| i % 2 == 0).collect::<Vec<_>>(),
        vec![true],
    ] {
        let f = Frame::data(&payload, params, &mut rng);
        let d = f.decode_and_verify(params).expect("clean frame verifies");
        assert_eq!(d.payload, payload);
    }
}

/// Sweeping every single-position injection over a frame: each is either
/// detected or absorbed — never an undetected payload change.
#[test]
fn no_single_injection_corrupts_a_frame() {
    let params = SubbitParams::with_length(18);
    let mut rng = StdRng::seed_from_u64(5);
    let payload: Vec<bool> = (0..20).map(|i| i % 3 == 0).collect();
    let frame = Frame::data(&payload, params, &mut rng);
    for bit in 0..frame.coded_bits() {
        let masks = AttackMask::new(frame.coded_bits())
            .inject_one(bit)
            .into_masks();
        if let Ok(d) = frame.attacked(&masks).decode_and_verify(params) {
            assert_eq!(
                d.payload, payload,
                "undetected corruption at coded bit {bit}"
            );
        }
    }
}
