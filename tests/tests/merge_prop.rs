//! Property tests for store merge/sync (PR 8): merging is a set union
//! of verified records — commutative, idempotent, order-insensitive —
//! a fault-injected source log never imports a corrupt record, and a
//! merged store replays the f2 goldens warm and bit-identically.

use std::sync::atomic::{AtomicUsize, Ordering};

use bftbcast::{BatchOptions, ScenarioFile};
use bftbcast_store::merge::merge;
use bftbcast_store::{fsck_report, sync, FaultPlan, Store};
use proptest::collection::vec;
use proptest::prelude::*;

static CASE: AtomicUsize = AtomicUsize::new(0);

/// A unique scratch directory per generated case.
fn scratch(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "bftbcast-merge-prop-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Writes `records` into a fresh store at `dir` (first write per key
/// wins, exactly like production puts) and fsyncs it.
fn store_with(dir: &std::path::Path, records: &[(u64, Vec<u8>)]) {
    let store = Store::open(dir).unwrap();
    for (key, value) in records {
        store.put(*key, value).unwrap();
    }
    store.sync().unwrap();
}

/// The store's content as a sorted `(key, value)` list — the set a
/// merge is supposed to union.
fn contents(dir: &std::path::Path, keys: impl IntoIterator<Item = u64>) -> Vec<(u64, Vec<u8>)> {
    let store = Store::open(dir).unwrap();
    let mut out: Vec<(u64, Vec<u8>)> = keys
        .into_iter()
        .filter_map(|k| store.get(k).map(|v| (k, v)))
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Every key any of the generated sets mention.
fn all_keys(sets: &[&[(u64, Vec<u8>)]]) -> Vec<u64> {
    let mut keys: Vec<u64> = sets
        .iter()
        .flat_map(|records| records.iter().map(|(k, _)| *k))
        .collect();
    keys.sort_unstable();
    keys.dedup();
    keys
}

fn records() -> impl Strategy<Value = Vec<(u64, Vec<u8>)>> {
    // Small keys force overlaps between independently generated sets,
    // which is where union semantics can actually go wrong.
    vec((0u64..32, vec(any::<u8>(), 0..48)), 0..16)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Merge is a union: importing B into A and A into B leave both
    /// holding the same record set, whatever the order — and merging
    /// a third store in either order lands on the same set too.
    #[test]
    fn merge_is_a_commutative_order_insensitive_union(
        a in records(),
        b in records(),
        c in records(),
    ) {
        let keys = all_keys(&[&a, &b, &c]);
        let (da, db, dc) = (scratch("a"), scratch("b"), scratch("c"));
        store_with(&da, &a);
        store_with(&db, &b);
        store_with(&dc, &c);

        // dst1 <- a, b, c; dst2 <- c, b, a.
        let (d1, d2) = (scratch("d1"), scratch("d2"));
        for src in [&da, &db, &dc] {
            merge(&d1, src).unwrap();
        }
        for src in [&dc, &db, &da] {
            merge(&d2, src).unwrap();
        }
        let (s1, s2) = (contents(&d1, keys.iter().copied()), contents(&d2, keys.iter().copied()));
        prop_assert_eq!(s1.len(), keys.len(), "every key present");
        // The orders disagree only where the same key holds different
        // payloads in different sources — there first-import-wins, so
        // compare key sets and require each value to come from *some*
        // source.
        let keys1: Vec<u64> = s1.iter().map(|(k, _)| *k).collect();
        let keys2: Vec<u64> = s2.iter().map(|(k, _)| *k).collect();
        prop_assert_eq!(keys1, keys2);
        for (k, v) in s1.iter().chain(s2.iter()) {
            let known = [&a, &b, &c]
                .iter()
                .any(|set| set.iter().any(|(sk, sv)| sk == k && sv == v));
            prop_assert!(known, "key {} holds a value no source ever wrote", k);
        }

        // Sync reconciles the *key* sets. Values can still differ on
        // keys both sides wrote independently: the store is write-once,
        // so each keeps its original record — exactly the semantics a
        // content-addressed cache wants, where equal keys mean equal
        // computations anyway.
        sync(&da, &db).unwrap();
        let keys_a: Vec<u64> = contents(&da, keys.iter().copied()).into_iter().map(|(k, _)| k).collect();
        let keys_b: Vec<u64> = contents(&db, keys.iter().copied()).into_iter().map(|(k, _)| k).collect();
        prop_assert_eq!(keys_a, keys_b);

        for dir in [da, db, dc, d1, d2] {
            std::fs::remove_dir_all(dir).ok();
        }
    }

    /// Merging the same source again imports nothing and changes
    /// nothing.
    #[test]
    fn merge_is_idempotent(a in records(), b in records()) {
        let keys = all_keys(&[&a, &b]);
        let (da, db) = (scratch("ia"), scratch("ib"));
        store_with(&da, &a);
        store_with(&db, &b);
        merge(&da, &db).unwrap();
        let snapshot = contents(&da, keys.iter().copied());
        let second = merge(&da, &db).unwrap();
        prop_assert_eq!(second.imported, 0, "second merge imported records");
        // After the first merge every source key exists in the
        // destination, so the re-merge sees nothing but duplicates.
        prop_assert_eq!(second.duplicates, second.scanned);
        prop_assert_eq!(contents(&da, keys.iter().copied()), snapshot);
        std::fs::remove_dir_all(da).ok();
        std::fs::remove_dir_all(db).ok();
    }

    /// A source written through a fault plan (torn writes, bit flips,
    /// short reads) never pollutes the destination: whatever survives
    /// the merge verifies, and every imported value is one some writer
    /// actually wrote.
    #[test]
    fn faulty_sources_never_import_corrupt_records(
        records in records(),
        seed in any::<u64>(),
    ) {
        let src = scratch("faulty");
        {
            let plan = FaultPlan::seeded(seed).torn_writes(300).bit_flips(300);
            let store = Store::open_with_faults(&src, plan).unwrap();
            for (key, value) in &records {
                // A faulted write may legitimately fail; the log on
                // disk is whatever survived — exactly the input merge
                // must cope with.
                let _ = store.put(*key, value);
            }
            let _ = store.sync();
        }
        let dst = scratch("clean");
        let report = merge(&dst, &src).unwrap();
        prop_assert!(report.imported <= records.len());
        let check = fsck_report(&dst).unwrap();
        prop_assert!(check.is_clean(), "merged store is dirty: {}", check);
        for (k, v) in contents(&dst, records.iter().map(|(k, _)| *k)) {
            let known = records.iter().any(|(sk, sv)| *sk == k && *sv == v);
            prop_assert!(known, "corrupt record for key {} imported", k);
        }
        std::fs::remove_dir_all(src).ok();
        std::fs::remove_dir_all(dst).ok();
    }
}

/// The acceptance property: compute f2 into one store, merge it into
/// an empty second store, and replay the sweep from the merged store —
/// all hits, zero misses, bit-identical golden rows.
#[test]
fn merged_store_replays_the_f2_goldens_warm() {
    let text = std::fs::read_to_string(format!(
        "{}/../scenarios/f2.scn",
        env!("CARGO_MANIFEST_DIR")
    ))
    .unwrap();
    let file = ScenarioFile::parse(&text).unwrap();

    let computed = scratch("f2-src");
    let store = Store::open(&computed).unwrap();
    let cold = bftbcast::run_file_with(
        &file,
        &BatchOptions {
            jobs: None,
            store: Some(&store),
        },
    )
    .unwrap();
    assert_eq!((cold.cache_hits, cold.cache_misses), (0, 1));
    store.sync().unwrap();
    drop(store);

    let merged = scratch("f2-dst");
    let report = merge(&merged, &computed).unwrap();
    assert_eq!(report.imported, 1);

    let store = Store::open(&merged).unwrap();
    let warm = bftbcast::run_file_with(
        &file,
        &BatchOptions {
            jobs: None,
            store: Some(&store),
        },
    )
    .unwrap();
    assert_eq!(
        (warm.cache_hits, warm.cache_misses),
        (1, 0),
        "merged store must replay warm"
    );
    let rows = warm.jsonl();
    assert_eq!(rows, cold.jsonl(), "bit-identical replay");
    for needle in [
        "\"intake\":2065",
        "\"intake\":1947",
        "\"tally_wrong\":947",
        "\"accepted_true\":84",
    ] {
        assert!(rows.contains(needle), "{needle} missing:\n{rows}");
    }
    std::fs::remove_dir_all(computed).ok();
    std::fs::remove_dir_all(merged).ok();
}
