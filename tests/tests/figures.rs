//! The figure pipeline's goldens: the f2 heat map is hash-pinned the
//! way the f2 numbers are, the committed gallery under `docs/figures/`
//! must match a fresh render bit-for-bit, and the server's `report`
//! request must replay a warm store without simulating.

use bftbcast::report::{figure_hash, render_scenario, Figure, ReportSpec};
use bftbcast::{BatchOptions, ScenarioFile};

/// The pinned FNV-1a 64 hash of the rendered `f2-map.svg` bytes. The
/// map's caption carries the Figure 2 goldens (2065 / 1947 / 947,
/// stall 84), so this constant pins them the way the number goldens
/// are pinned — a renderer or engine change that moves any pixel or
/// digit must consciously update it (and regenerate `docs/figures/`
/// via `scripts/gen_figures.sh`).
const F2_MAP_HASH: u64 = 0x01ab_e550_1fc0_c21d;

fn repo_path(rel: &str) -> String {
    format!("{}/../{rel}", env!("CARGO_MANIFEST_DIR"))
}

fn render_with(rel: &str, spec: &ReportSpec) -> Figure {
    let text = std::fs::read_to_string(repo_path(rel)).unwrap();
    let file = ScenarioFile::parse(&text).unwrap();
    let out = render_scenario(&file, spec, &BatchOptions::default()).unwrap();
    assert_eq!(out.figures.len(), 1);
    out.figures.into_iter().next().unwrap()
}

fn render(rel: &str) -> Figure {
    render_with(rel, &ReportSpec::default())
}

/// The acceptance gate: `report --scenario scenarios/f2.scn` renders a
/// deterministic heat map whose pinned hash encodes the goldens.
#[test]
fn f2_map_is_hash_pinned_and_carries_the_goldens() {
    let figure = render("scenarios/f2.scn");
    assert_eq!(figure.name, "f2-map");
    // 45x45 cells, every one colored.
    assert_eq!(figure.svg.matches("<rect").count(), 45 * 45);
    for needle in [
        "probe (0, 5): intake 2065, true 2065, wrong 0",
        "probe (5, 1): intake 1947, true 1000, wrong 947",
        "outcome: accepted_true 84",
        "#ffd700", // the source cell
        "#1a1a1a", // Byzantine cells
    ] {
        assert!(figure.svg.contains(needle), "{needle} missing from the map");
    }
    assert_eq!(
        figure_hash(&figure.svg),
        F2_MAP_HASH,
        "f2-map.svg drifted; if intentional, update the hash and rerun \
         scripts/gen_figures.sh"
    );
    // Rendering twice is bit-identical.
    assert_eq!(render("scenarios/f2.scn").svg, figure.svg);
}

/// Every committed gallery figure equals a fresh default render — the
/// in-repo version of CI's determinism gate.
#[test]
fn committed_gallery_matches_fresh_renders() {
    for (scenario, figure_file) in [
        ("scenarios/f2.scn", "docs/figures/f2-map.svg"),
        ("scenarios/t1.scn", "docs/figures/t1-chart.svg"),
        ("scenarios/x4.scn", "docs/figures/x4-chart.svg"),
        (
            "scenarios/examples/hybrid_stripes.scn",
            "docs/figures/hybrid-stripes-chart.svg",
        ),
        (
            "scenarios/examples/reactive_mixed.scn",
            "docs/figures/reactive-mixed-chart.svg",
        ),
        (
            "scenarios/examples/stripe_chaos.scn",
            "docs/figures/stripe-chaos-chart.svg",
        ),
    ] {
        let fresh = render(scenario);
        let committed = std::fs::read_to_string(repo_path(figure_file)).unwrap();
        assert_eq!(
            committed, fresh.svg,
            "{figure_file} differs from rendering {scenario}; \
             rerun scripts/gen_figures.sh"
        );
    }

    // The RBC wire-cost chart renders with the non-default spec
    // scripts/gen_figures.sh passes (wire_bits vs log-payload, one
    // series per protocol).
    let spec = ReportSpec {
        field: Some("wire_bits".to_string()),
        x_axis: Some("payload".to_string()),
        log_x: true,
        ..ReportSpec::default()
    };
    let fresh = render_with("scenarios/rbc-wire.scn", &spec);
    for series in ["protocol=counting", "protocol=bracha", "protocol=ctrbc"] {
        assert!(fresh.svg.contains(series), "{series} missing from legend");
    }
    let committed = std::fs::read_to_string(repo_path("docs/figures/rbc-wire-chart.svg")).unwrap();
    assert_eq!(
        committed, fresh.svg,
        "docs/figures/rbc-wire-chart.svg differs from rendering \
         scenarios/rbc-wire.scn; rerun scripts/gen_figures.sh"
    );

    // The adversarial-schedule latency chart: waves vs seed, one
    // series per delivery schedule, equivocators live on every point.
    let spec = ReportSpec {
        field: Some("waves".to_string()),
        x_axis: Some("seed".to_string()),
        ..ReportSpec::default()
    };
    let fresh = render_with("scenarios/rbc-adversary.scn", &spec);
    for series in ["schedule=seeded", "schedule=delay_quorum", "schedule=gst"] {
        assert!(fresh.svg.contains(series), "{series} missing from legend");
    }
    let committed =
        std::fs::read_to_string(repo_path("docs/figures/rbc-adversary-chart.svg")).unwrap();
    assert_eq!(
        committed, fresh.svg,
        "docs/figures/rbc-adversary-chart.svg differs from rendering \
         scenarios/rbc-adversary.scn; rerun scripts/gen_figures.sh"
    );
}

/// The acceptance gate's second half: a warm-store `report` round trip
/// over the server renders the same bytes with `cache_hits == points`.
#[test]
fn server_report_round_trip_replays_warm_without_simulating() {
    use bftbcast_server::client;
    use bftbcast_store::Store;
    use std::sync::Arc;

    let server =
        bftbcast_server::Server::bind("127.0.0.1:0", Arc::new(Store::in_memory()), None).unwrap();
    let addr = server.local_addr().to_string();
    let handle = std::thread::spawn(move || server.serve());

    let f2 = std::fs::read_to_string(repo_path("scenarios/f2.scn")).unwrap();
    let params = client::ReportParams::default();
    let (cold, trailer) = client::report(&addr, &f2, &params).unwrap();
    assert_eq!(cold.len(), 1);
    assert!(trailer.contains("\"cache_hits\":0"), "{trailer}");
    assert!(trailer.contains("\"cache_misses\":1"), "{trailer}");

    let (warm, trailer2) = client::report(&addr, &f2, &params).unwrap();
    assert_eq!(warm, cold, "warm figures are bit-identical");
    assert!(
        trailer2.contains("\"cache_hits\":1") && trailer2.contains("\"cache_misses\":0"),
        "warm render must be all hits: {trailer2}"
    );

    // The remote bytes are the local bytes — and therefore the pinned
    // golden.
    assert_eq!(warm[0].0, "f2-map");
    assert_eq!(figure_hash(&warm[0].1), F2_MAP_HASH);

    client::shutdown(&addr).unwrap();
    handle.join().unwrap().unwrap();
}
