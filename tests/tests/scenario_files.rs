//! Round-trip tests for the shipped `scenarios/*.scn` files: parse the
//! actual files, run them through the batch runner, and hold the
//! ported experiments to their Rust twins' numbers — most importantly
//! the Figure 2 goldens (2065 / 1947 / 947, stall 84), which must stay
//! bit-identical.

use bftbcast::prelude::*;

fn load(rel: &str) -> ScenarioFile {
    let path = format!("{}/../{rel}", env!("CARGO_MANIFEST_DIR"));
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
    ScenarioFile::parse(&text).unwrap_or_else(|e| panic!("parsing {rel}: {e}"))
}

/// scenarios/f2.scn reproduces the paper's Figure 2 numbers exactly.
#[test]
fn f2_scn_round_trips_the_goldens() {
    let file = load("scenarios/f2.scn");
    assert_eq!(file.name, "f2");
    assert_eq!(file.engine, EngineKind::Counting);
    let report = run_file(&file).expect("f2 runs");
    assert_eq!(report.results.len(), 1);
    let result = &report.results[0];

    let outcome = result.outcome.as_counting().expect("counting outcome");
    assert_eq!(outcome.accepted_true, 84, "decided nodes at stall");
    assert!(!outcome.is_complete(), "broadcast must fail");
    assert!(outcome.is_correct(), "no forged acceptance");

    let gray = &result.probes[0];
    assert_eq!((gray.x, gray.y), (0, 5));
    assert_eq!(gray.probe.intake(), 2065, "gray-node intake");
    let p = &result.probes[1];
    assert_eq!((p.x, p.y), (5, 1));
    assert_eq!(p.probe.intake(), 1947, "copies delivered to p");
    assert_eq!(p.probe.tally_wrong, 947, "copies corrupted at p");
    assert_eq!(p.probe.accepted, None, "p undecided");
    assert_eq!(p.probe.decided_neighbors, 33, "decided neighbors of p");
}

/// The declarative f2 run and the hand-written EXP-F2 construction are
/// the same simulation: identical outcome, wave by wave.
#[test]
fn f2_scn_matches_the_programmatic_construction() {
    let file = load("scenarios/f2.scn");
    let report = run_file(&file).expect("f2 runs");
    let declarative = report.results[0].outcome.as_counting().unwrap().clone();

    let s = Scenario::builder(45, 45, 4)
        .faults(1, 1000)
        .lattice_placement_with_offset(41)
        .build()
        .unwrap();
    let proto = CountingProtocol::starved(s.grid(), s.params(), 59);
    let mut sim = s.counting_sim(proto);
    let programmatic = sim.run_oracle(s.params().mf);
    assert_eq!(declarative, programmatic);
}

/// scenarios/t1.scn: the band is starved iff m < m0 = 11.
#[test]
fn t1_scn_flips_exactly_at_m0() {
    let file = load("scenarios/t1.scn");
    let report = run_file(&file).expect("t1 runs");
    assert_eq!(report.results.len(), 5, "sweep m = [9, 10, 11, 12, 22]");
    for result in &report.results {
        let m: u64 = result.point[0].1.parse().unwrap();
        let o = result.outcome.as_counting().unwrap();
        assert!(o.is_correct(), "m = {m}");
        assert_eq!(
            o.is_complete(),
            m >= 11,
            "Theorem 1 threshold at m0 = 11; m = {m} gave coverage {}",
            o.coverage()
        );
    }
}

/// scenarios/x4.scn: the 121-schedule equivocation sweep shows the
/// cheap mode's split window — present, but a minority of schedules —
/// matching EXP-X4b's r = 2, t = 1, mf = 10 row.
#[test]
fn x4_scn_reproduces_the_split_window() {
    let file = load("scenarios/x4.scn");
    assert_eq!(file.engine, EngineKind::Agreement);
    let report = run_file(&file).expect("x4 runs");
    assert_eq!(report.results.len(), 121, "11x11 capacity schedules");
    let splits = report
        .results
        .iter()
        .filter(|r| !r.outcome.as_agreement().unwrap().agreement_holds())
        .count();
    assert!(splits > 0, "the split window is a documented finding");
    assert!(splits < 121 / 2, "splits are a minority ({splits}/121)");
}

/// Every shipped example scenario parses and runs; correctness (no
/// forged acceptance) holds everywhere the counting family runs.
#[test]
fn example_scenarios_parse_and_run() {
    for rel in [
        "scenarios/examples/stripe_chaos.scn",
        "scenarios/examples/hybrid_stripes.scn",
        "scenarios/examples/reactive_mixed.scn",
    ] {
        let file = load(rel);
        let report = run_file(&file).unwrap_or_else(|e| panic!("{rel}: {e}"));
        assert!(!report.results.is_empty(), "{rel}");
        for result in &report.results {
            if let Some(o) = result.outcome.as_counting() {
                assert!(o.is_correct(), "{rel} point {:?}", result.point);
            }
        }
    }
}

/// Chaos fuzzing over stripes never defeats protocol B (Theorem 2
/// holds under any adversary) — the guarantee the stripe_chaos example
/// documents.
#[test]
fn stripe_chaos_example_upholds_theorem2() {
    let file = load("scenarios/examples/stripe_chaos.scn");
    let report = run_file(&file).unwrap();
    assert_eq!(report.results.len(), 8);
    for result in &report.results {
        let o = result.outcome.as_counting().unwrap();
        assert!(o.is_reliable(), "seed {:?}", result.point);
    }
}

/// scenarios/rbc-compare.scn: the three RBC protocols on one fixed
/// torus, fixed seed. All three deliver everywhere; the golden row
/// (EXPERIMENTS.md EXP-R1) pins messages / wire_bits / waves so the
/// runtime's accounting can never drift silently.
#[test]
fn rbc_compare_scn_round_trips_the_goldens() {
    let file = load("scenarios/rbc-compare.scn");
    assert_eq!(file.name, "rbc-compare");
    assert_eq!(file.engine, EngineKind::Rbc);
    let report = run_file(&file).expect("rbc-compare runs");
    assert_eq!(report.results.len(), 3, "counting | bracha | ctrbc");

    // (protocol, messages, wire_bits, waves) at seed 7.
    let goldens: [(&str, u64, u64, u64); 3] = [
        ("counting", 1784, 7_335_808, 9),
        ("bracha", 797_448, 3_279_106_176, 20),
        ("ctrbc", 801_016, 681_489_784, 20),
    ];
    for (result, (name, messages, wire_bits, waves)) in report.results.iter().zip(goldens) {
        assert_eq!(result.point[0], ("protocol".to_string(), name.to_string()));
        let o = result.outcome.as_rbc().unwrap_or_else(|| panic!("{name}"));
        assert!(o.is_reliable(), "{name} must deliver everywhere");
        assert_eq!(o.good_nodes, 223, "{name}");
        assert_eq!(
            (o.messages, o.wire_bits, o.waves),
            (messages, wire_bits, waves),
            "{name} golden"
        );
        // The probe list drops the (mute) Byzantine cell (3,3): only
        // the good node (7,2) answers, and it delivered.
        assert_eq!(result.probes.len(), 1, "{name}");
        let p = &result.probes[0];
        assert_eq!((p.x, p.y), (7, 2), "{name}");
        assert_eq!(p.probe.accepted, Some(Value::TRUE), "{name}");
    }

    // The comparison the scenario exists to make: agreement costs
    // quorums (bracha ≫ counting in both messages and bits), and
    // coding claws back most of the bits at the same message count.
    let by_name = |n: &str| {
        report
            .results
            .iter()
            .find(|r| r.point[0].1 == n)
            .and_then(|r| r.outcome.as_rbc())
            .unwrap()
    };
    let (counting, bracha, ctrbc) = (by_name("counting"), by_name("bracha"), by_name("ctrbc"));
    assert!(bracha.messages > 100 * counting.messages);
    assert!(
        ctrbc.wire_bits * 4 < bracha.wire_bits,
        "t + 1 = 3 fragments"
    );
    assert!(ctrbc.messages.abs_diff(bracha.messages) < bracha.messages / 100);
}

/// scenarios/rbc-adversary.scn: Bracha under two live equivocators,
/// swept across every delivery schedule × eight seeds. Agreement holds
/// at budget on all 40 points; the (seeded, seed 0) goldens (EXP-R2)
/// pin the outcome *and* the probed node's equivocation evidence.
#[test]
fn rbc_adversary_scn_round_trips_the_goldens() {
    let file = load("scenarios/rbc-adversary.scn");
    assert_eq!(file.name, "rbc-adversary");
    assert_eq!(file.engine, EngineKind::Rbc);
    let report = run_file(&file).expect("rbc-adversary runs");
    assert_eq!(report.results.len(), 40, "5 schedules x 8 seeds");

    for result in &report.results {
        let o = result.outcome.as_rbc().unwrap();
        assert!(
            o.is_reliable(),
            "equivocators at budget cannot block delivery: {:?}",
            result.point
        );
        assert_eq!(o.good_nodes, 47, "{:?}", result.point);
    }

    // The pinned point: schedule = "seeded", seed = 0.
    let golden = &report.results[0];
    assert_eq!(
        golden.point,
        vec![
            ("schedule".to_string(), "seeded".to_string()),
            ("seed".to_string(), "0".to_string()),
        ]
    );
    let o = golden.outcome.as_rbc().unwrap();
    assert_eq!(
        (o.messages, o.wire_bits, o.waves),
        (121_032, 63_904_896, 7),
        "seeded/0 golden"
    );
    let p = &golden.probes[0];
    assert_eq!((p.x, p.y), (3, 3));
    assert_eq!(p.probe.accepted, Some(Value::TRUE));
    assert_eq!(p.probe.phase, 3, "the probed node delivered");
    assert_eq!(
        p.probe.conflicts, 8,
        "split-brain votes leave pinned evidence at (3,3)"
    );

    // Latency is the axis the adversary owns: the delay-the-quorum
    // schedule stretches the same delivery to its deferral bound while
    // moving neither message nor bit totals (flooding is relay-once).
    let by_schedule = |name: &str| {
        report
            .results
            .iter()
            .find(|r| r.point[0].1 == name)
            .and_then(|r| r.outcome.as_rbc())
            .unwrap()
    };
    let (seeded, delayed, gst) = (
        by_schedule("seeded"),
        by_schedule("delay_quorum"),
        by_schedule("gst"),
    );
    assert!(delayed.waves > 4 * seeded.waves, "deferral stretches waves");
    assert!(
        gst.waves > seeded.waves,
        "partial synchrony delays the tail"
    );
    assert_eq!(delayed.messages, seeded.messages);
    assert_eq!(delayed.wire_bits, seeded.wire_bits);
}

/// JSON-lines output is one valid self-describing object per point
/// (spot-checked shape; full schema in EXPERIMENTS.md).
#[test]
fn jsonl_stream_shape() {
    let file = load("scenarios/t1.scn");
    let report = run_file(&file).unwrap();
    let jsonl = report.jsonl();
    assert_eq!(jsonl.lines().count(), report.results.len());
    for line in jsonl.lines() {
        assert!(line.starts_with("{\"scenario\":\"t1\""), "{line}");
        assert!(line.contains("\"engine\":\"counting\""), "{line}");
        assert!(line.contains("\"point\":{\"m\":"), "{line}");
        assert!(
            line.contains("\"outcome\":{\"kind\":\"counting\""),
            "{line}"
        );
        assert!(line.ends_with("}"), "{line}");
    }
}
