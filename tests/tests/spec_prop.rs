//! Property tests for the spec layer: `EngineSpec` ⇄ JSON ⇄ `.scn`
//! round-trips are lossless, and the spec's identity — its
//! `cache::point_key` — is stable under representation changes
//! (codec form, JSON field order, display name) while flipping under
//! any single configuration-field change.

use bftbcast::json::Json;
use bftbcast::rbc::{ByzantineBehavior, RbcProtocol, ScheduleKind};
use bftbcast::scenario_file::{
    AdversarySpec, AgreementSpec, CrashNodesSpec, CrashSpec, PlacementSpec, ProtocolSpec, RbcSpec,
    ReactiveSpec, SourceSpec,
};
use bftbcast::sim::crash::CrashBehavior;
use bftbcast::sim::engine::AgreementMode;
use bftbcast::sim::slot::ReactiveAdversary;
use bftbcast::spec::EngineSpec;
use proptest::prelude::*;

/// SplitMix64: one `u64` case seed fans out into every spec field, so
/// the whole configuration space is driven by a single strategy.
fn next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn pick(state: &mut u64, n: u64) -> u64 {
    next(state) % n
}

/// A fraction that round-trips exactly through decimal text.
fn frac(state: &mut u64) -> f64 {
    pick(state, 1001) as f64 / 1000.0
}

fn cells(state: &mut u64, w: u32, h: u32, max: u64) -> Vec<(u32, u32)> {
    (0..pick(state, max + 1))
        .map(|_| {
            (
                pick(state, u64::from(w)) as u32,
                pick(state, u64::from(h)) as u32,
            )
        })
        .collect()
}

/// Generates one valid spec covering all five engines and every
/// placement/protocol/adversary/crash/reactive/agreement/rbc variant.
fn gen_spec(mut s: u64) -> EngineSpec {
    let st = &mut s;
    let width = 5 + pick(st, 26) as u32;
    let height = 5 + pick(st, 26) as u32;
    let r = 1 + pick(st, 3) as u32;
    let t = 1 + pick(st, 2) as u32;
    let names = [
        "spec",
        "f2",
        "a \"quoted\" name",
        "tabs\tand\nnewlines",
        "#x",
    ];
    let engine_pick = pick(st, 5);
    let mut b = match engine_pick {
        0 => EngineSpec::counting(width, height, r),
        1 => EngineSpec::crash(width, height, r),
        2 => EngineSpec::slot(width, height, r),
        3 => EngineSpec::agreement(width, height, r),
        _ => EngineSpec::rbc(width, height, r),
    };
    b = b
        .name(names[pick(st, names.len() as u64) as usize])
        .faults(t, next(st))
        .source(
            pick(st, u64::from(width)) as u32,
            pick(st, u64::from(height)) as u32,
        )
        .seed(next(st));
    b = b.placement(match pick(st, 6) {
        0 => PlacementSpec::None,
        1 => PlacementSpec::Lattice {
            offset: pick(st, 100) as u32,
        },
        2 => PlacementSpec::Stripes(
            (0..1 + pick(st, 3))
                .map(|_| {
                    (
                        pick(st, u64::from(height)) as u32,
                        pick(st, 4) as u32,
                        pick(st, 2) == 0,
                    )
                })
                .collect(),
        ),
        3 => PlacementSpec::Random {
            count: pick(st, 50) as usize,
        },
        4 => PlacementSpec::Bernoulli { p: frac(st) },
        _ => PlacementSpec::Explicit(cells(st, width, height, 4)),
    });
    match engine_pick {
        0 => {
            // Counting: any protocol except crash_only; majority pins
            // the oracle adversary.
            b = match pick(st, 5) {
                0 => b.protocol_b(),
                1 => b.koo(),
                2 => b.heterogeneous(),
                3 => b.starved(next(st)),
                _ => b.majority(next(st)),
            };
            if !matches!(
                b.clone().finish().map(|s| s.point().protocol),
                Ok(ProtocolSpec::Majority { .. })
            ) {
                b = b.adversary(
                    [
                        AdversarySpec::Oracle,
                        AdversarySpec::Greedy,
                        AdversarySpec::Chaos,
                        AdversarySpec::Passive,
                    ][pick(st, 4) as usize],
                );
            }
        }
        1 => {
            b = match pick(st, 5) {
                0 => b.protocol_b(),
                1 => b.koo(),
                2 => b.heterogeneous(),
                3 => b.starved(next(st)),
                _ => b.crash_only(),
            };
            let nodes = match pick(st, 2) {
                0 => CrashNodesSpec::Stripe {
                    y0: pick(st, u64::from(height)) as u32,
                    height: 1 + pick(st, 3) as u32,
                },
                _ => CrashNodesSpec::Explicit(cells(st, width, height, 4)),
            };
            let behavior = match pick(st, 3) {
                0 => CrashBehavior::Immediate,
                1 => CrashBehavior::AfterQuota,
                _ => CrashBehavior::AfterCopies(next(st)),
            };
            b = b.crash_load(CrashSpec { nodes, behavior });
        }
        2 => {
            b = b.reactive(ReactiveSpec {
                k: 1 + pick(st, 63) as usize,
                mmax: next(st),
                adversary: [
                    ReactiveAdversary::Passive,
                    ReactiveAdversary::Jammer,
                    ReactiveAdversary::Canceller,
                    ReactiveAdversary::NackForger,
                    ReactiveAdversary::WitnessForger,
                    ReactiveAdversary::Mixed,
                ][pick(st, 6) as usize],
                budget: match pick(st, 2) {
                    0 => None,
                    _ => Some(next(st)),
                },
                max_rounds: next(st),
            });
        }
        3 => {
            // Proven mode's t bound holds at t = 1 for every r >= 1.
            let mode = if t == 1 && pick(st, 2) == 0 {
                AgreementMode::Proven
            } else {
                AgreementMode::Cheap
            };
            b = b.agreement_config(AgreementSpec {
                mode,
                source: [SourceSpec::Correct, SourceSpec::Split, SourceSpec::Silent]
                    [pick(st, 3) as usize],
                p1: frac(st),
                pe: frac(st),
            });
        }
        _ => {
            // Payload stays above CTRBC's 2(t + 1) fragment floor for
            // either value the `t` mutation can flip to.
            b = b.rbc_config(RbcSpec {
                protocol: [
                    RbcProtocol::Counting,
                    RbcProtocol::Bracha,
                    RbcProtocol::Ctrbc,
                ][pick(st, 3) as usize],
                payload: 6 + pick(st, 4096) as u32,
                max_waves: 1 + pick(st, 100_000),
                schedule: ScheduleKind::ALL[pick(st, ScheduleKind::ALL.len() as u64) as usize],
                behavior: ByzantineBehavior::ALL
                    [pick(st, ByzantineBehavior::ALL.len() as u64) as usize],
            });
        }
    }
    b = b.probes(&cells(st, width, height, 3));
    b.finish().expect("generated specs are valid")
}

/// Re-renders a parsed JSON value with every object's fields reversed,
/// recursively — a structural permutation of the canonical form.
fn render_reversed(v: &Json) -> String {
    match v {
        Json::Null => "null".to_string(),
        Json::Bool(b) => b.to_string(),
        Json::Num(raw) => raw.clone(),
        Json::Str(s) => bftbcast::json::string(s),
        Json::Arr(items) => {
            let cells: Vec<String> = items.iter().map(render_reversed).collect();
            format!("[{}]", cells.join(","))
        }
        Json::Obj(fields) => {
            let cells: Vec<String> = fields
                .iter()
                .rev()
                .map(|(k, v)| format!("{}:{}", bftbcast::json::string(k), render_reversed(v)))
                .collect();
            format!("{{{}}}", cells.join(","))
        }
    }
}

/// One single-field mutation of a valid spec, chosen by `which`;
/// returns `None` when the mutation would leave the configuration
/// space (so the case is retried with another field).
fn mutate(spec: &EngineSpec, which: u64) -> Option<EngineSpec> {
    let mut point = spec.point().clone();
    let mut probes = spec.probes().to_vec();
    match which % 7 {
        0 => point.mf = point.mf.wrapping_add(1),
        1 => point.seed = point.seed.wrapping_add(1),
        2 => point.t = if point.t == 1 { 2 } else { 1 },
        3 => point.source = ((point.source.0 + 1) % point.width, point.source.1),
        4 => point.width += 1,
        5 => {
            if probes.is_empty() {
                probes.push((0, 0));
            } else {
                probes.pop();
            }
        }
        6 => {
            // The adversary axes exist only on the rbc engine; any
            // other engine retries with a different field.
            if spec.engine() != bftbcast::scenario_file::EngineKind::Rbc {
                return None;
            }
            point.rbc.schedule = match point.rbc.schedule {
                ScheduleKind::Seeded => ScheduleKind::Gst,
                _ => ScheduleKind::Seeded,
            };
            point.rbc.behavior = match point.rbc.behavior {
                ByzantineBehavior::Mute => ByzantineBehavior::Equivocate,
                _ => ByzantineBehavior::Mute,
            };
        }
        _ => unreachable!(),
    }
    EngineSpec::from_parts(spec.name().to_string(), spec.engine(), point, probes).ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// JSON round trip: lossless, and the key survives the codec.
    #[test]
    fn json_round_trip_is_lossless_and_key_stable(seed in any::<u64>()) {
        let spec = gen_spec(seed);
        let json = spec.to_json();
        let back = EngineSpec::from_json(&json)
            .map_err(|e| TestCaseError::Fail(format!("{json}: {e}")))?;
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.cache_key(), spec.cache_key());
        // Canonical output is a fixpoint.
        prop_assert_eq!(back.to_json(), json);
    }

    /// `.scn` round trip: lossless, and the key survives the codec.
    #[test]
    fn scn_round_trip_is_lossless_and_key_stable(seed in any::<u64>()) {
        let spec = gen_spec(seed);
        let scn = spec.to_scn();
        let back = EngineSpec::from_scn(&scn)
            .map_err(|e| TestCaseError::Fail(format!("{scn}: {e}")))?;
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.cache_key(), spec.cache_key());
        prop_assert_eq!(back.to_scn(), scn);
    }

    /// The composed trip — spec → JSON → spec → .scn → spec — lands on
    /// the same value and the same key.
    #[test]
    fn json_then_scn_compose(seed in any::<u64>()) {
        let spec = gen_spec(seed);
        let via_json = EngineSpec::from_json(&spec.to_json()).unwrap();
        let via_both = EngineSpec::from_scn(&via_json.to_scn()).unwrap();
        prop_assert_eq!(&via_both, &spec);
        prop_assert_eq!(via_both.cache_key(), spec.cache_key());
    }

    /// Key stability: JSON field order and the display name are
    /// presentation, never identity.
    #[test]
    fn key_is_permutation_and_name_insensitive(seed in any::<u64>()) {
        let spec = gen_spec(seed);
        let doc = Json::parse(&spec.to_json()).unwrap();
        let reversed = render_reversed(&doc);
        let back = EngineSpec::from_json(&reversed)
            .map_err(|e| TestCaseError::Fail(format!("{reversed}: {e}")))?;
        prop_assert_eq!(&back, &spec);
        prop_assert_eq!(back.cache_key(), spec.cache_key());

        let renamed = EngineSpec::from_parts(
            format!("{}-renamed", spec.name()),
            spec.engine(),
            spec.point().clone(),
            spec.probes().to_vec(),
        )
        .unwrap();
        prop_assert_eq!(renamed.cache_key(), spec.cache_key());
    }

    /// Key sensitivity: changing any single configuration field flips
    /// the key (and the canonical JSON).
    #[test]
    fn key_is_single_field_sensitive(seed in any::<u64>(), which in any::<u64>()) {
        let spec = gen_spec(seed);
        let Some(mutated) = mutate(&spec, which) else {
            prop_assume!(false);
            unreachable!();
        };
        prop_assert_ne!(mutated.cache_key(), spec.cache_key());
        prop_assert_ne!(mutated.to_json(), spec.to_json());
    }
}
