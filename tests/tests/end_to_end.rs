//! Integration: every protocol, both engines, through the public API.

use bftbcast::net::Cross;
use bftbcast::prelude::*;
use bftbcast_integration_tests::SEEDS;

fn lattice(r: u32, mult: u32, t: u32, mf: u64) -> Scenario {
    let side = (2 * r + 1) * mult;
    Scenario::builder(side, side, r)
        .faults(t, mf)
        .lattice_placement()
        .build()
        .unwrap()
}

#[test]
fn protocol_b_reliable_under_all_adversaries() {
    for (r, mult, t, mf) in [(1u32, 5u32, 1u32, 20u64), (2, 4, 3, 40)] {
        let s = lattice(r, mult, t, mf);
        for adv in [
            Adversary::Passive,
            Adversary::Greedy,
            Adversary::Chaos(1),
            Adversary::PerReceiverOracle,
        ] {
            let out = s.run_protocol_b(adv);
            assert!(out.is_reliable(), "r={r} t={t} {adv:?}");
        }
    }
}

#[test]
fn heterogeneous_protocol_reliable() {
    let s = lattice(2, 4, 2, 30);
    let cross = Cross::spanning(s.grid(), 0, 0, 4);
    let out = s.run_heterogeneous(&cross, Adversary::PerReceiverOracle);
    assert!(out.is_reliable());
    // And strictly cheaper on average than homogeneous 2m0.
    let proto = CountingProtocol::heterogeneous(s.grid(), s.params(), &cross);
    assert!(proto.average_budget(s.grid().nodes()) < s.params().sufficient_budget() as f64);
}

#[test]
fn koo_baseline_reliable_but_expensive() {
    let s = lattice(2, 4, 2, 30);
    let koo = s.run_koo_baseline(Adversary::PerReceiverOracle);
    let b = s.run_protocol_b(Adversary::PerReceiverOracle);
    assert!(koo.is_reliable() && b.is_reliable());
    assert!(koo.good_copies_sent > 2 * b.good_copies_sent);
}

#[test]
fn reactive_reliable_across_seeds_and_adversaries() {
    let s = Scenario::builder(15, 15, 1)
        .faults(1, 5)
        .random_placement(15, 3)
        .build()
        .unwrap();
    for &seed in &SEEDS {
        for adv in [
            ReactiveAdversary::Passive,
            ReactiveAdversary::Jammer,
            ReactiveAdversary::NackForger,
            ReactiveAdversary::Mixed,
        ] {
            let out = s.run_reactive(16, 1 << 16, adv, seed);
            assert!(
                out.is_reliable(),
                "seed {seed} {adv:?}: uncommitted {:?}",
                out.uncommitted
            );
        }
    }
}

#[test]
fn starvation_below_m0_and_recovery_at_m0() {
    let s = Scenario::builder(20, 20, 2)
        .faults(2, 35)
        .stripe_placement(&[(6, 2, true), (15, 2, false)])
        .build()
        .unwrap();
    let p = s.params();
    let starved = s.run_starved(p.m0() - 1, Adversary::PerReceiverOracle);
    assert!(!starved.is_complete());
    assert!(starved.is_correct());
    let ok = s.run_starved(p.m0(), Adversary::PerReceiverOracle);
    assert!(ok.is_complete());
}

#[test]
fn correctness_invariant_fuzz() {
    // Lemma 1 as an invariant: no adversary ever produces a wrong accept.
    for &seed in &SEEDS {
        let s = Scenario::builder(15, 15, 1)
            .faults(2, 25)
            .random_placement(30, seed)
            .build()
            .unwrap();
        for m in [1, 5, s.params().m0(), s.params().sufficient_budget()] {
            let out = s.run_starved(m, Adversary::Chaos(seed ^ 0xABCD));
            assert!(out.is_correct(), "seed {seed} m={m}");
            let out = s.run_starved(m, Adversary::PerReceiverOracle);
            assert!(out.is_correct(), "oracle seed {seed} m={m}");
        }
    }
}
