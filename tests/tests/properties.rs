//! Property-based integration tests over the public API.

use bftbcast::prelude::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Lemma 1 end-to-end: whatever the placement, budget and adversary,
    /// a good node never accepts a forged value.
    #[test]
    fn no_wrong_accepts_ever(
        seed in any::<u64>(),
        t in 1u32..3,
        mf in 1u64..40,
        m_scale in 0u64..3,
        count in 0usize..40,
    ) {
        let s = Scenario::builder(15, 15, 1)
            .faults(t, mf)
            .random_placement(count, seed)
            .build()
            .unwrap();
        let m = match m_scale {
            0 => 1,
            1 => s.params().m0(),
            _ => s.params().sufficient_budget(),
        };
        for adv in [Adversary::Greedy, Adversary::Chaos(seed), Adversary::PerReceiverOracle] {
            prop_assert!(s.run_starved(m, adv).is_correct());
        }
    }

    /// Theorem 2 end-to-end: protocol B at 2*m0 is reliable against the
    /// oracle for random placements.
    #[test]
    fn protocol_b_reliable_random_placements(
        seed in any::<u64>(),
        t in 1u32..3,
        mf in 1u64..60,
        count in 0usize..50,
    ) {
        let s = Scenario::builder(15, 15, 1)
            .faults(t, mf)
            .random_placement(count, seed)
            .build()
            .unwrap();
        let out = s.run_protocol_b(Adversary::PerReceiverOracle);
        prop_assert!(out.is_reliable(), "coverage {}", out.coverage());
    }

    /// Monotonicity: more budget never reduces oracle coverage.
    #[test]
    fn coverage_monotone_in_budget(
        seed in any::<u64>(),
        mf in 2u64..40,
    ) {
        let s = Scenario::builder(20, 20, 2)
            .faults(1, mf)
            .stripe_placement(&[(6, 1, true), (15, 1, false)])
            .build()
            .unwrap();
        let m0 = s.params().m0();
        let mut probes: Vec<u64> = vec![m0.saturating_sub(2), m0.saturating_sub(1), m0, m0 + 1];
        probes.retain(|&m| m >= 1);
        probes.sort_unstable();
        probes.dedup();
        let mut last = -1.0f64;
        for m in probes {
            let c = s.run_starved(m, Adversary::PerReceiverOracle).coverage();
            prop_assert!(c >= last, "coverage dropped from {last} to {c} at m={m} (seed {seed})");
            last = c;
        }
    }

    /// The scenario builder never produces a placement violating the
    /// local bound (and the engine never panics on it).
    #[test]
    fn builder_placements_always_respect_bound(
        seed in any::<u64>(),
        t in 1u32..3, // r = 1: the locally-bounded model needs t < r(2r+1) = 3
        count in 0usize..100,
    ) {
        let s = Scenario::builder(15, 15, 1)
            .faults(t, 3)
            .random_placement(count, seed)
            .build()
            .unwrap();
        prop_assert!(bftbcast::adversary::respects_local_bound(
            s.grid(), s.bad_nodes(), t as usize));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Adversary dominance: the per-receiver oracle is at least as strong
    /// as any physical strategy — its coverage is never higher.
    #[test]
    fn oracle_dominates_physical_strategies(
        seed in any::<u64>(),
        mf in 1u64..50,
        count in 0usize..40,
        m_off in 0u64..4,
    ) {
        let s = Scenario::builder(15, 15, 1)
            .faults(1, mf)
            .random_placement(count, seed)
            .build()
            .unwrap();
        let m = (s.params().m0() + m_off).max(1);
        let oracle = s.run_starved(m, Adversary::PerReceiverOracle).coverage();
        for adv in [Adversary::Greedy, Adversary::Chaos(seed), Adversary::Passive] {
            let physical = s.run_starved(m, adv).coverage();
            prop_assert!(
                oracle <= physical + 1e-12,
                "oracle {oracle} > {adv:?} {physical} (seed {seed}, m {m})"
            );
        }
    }
}
