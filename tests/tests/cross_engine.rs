//! Integration: the two engines agree where their models overlap.
//!
//! With a passive adversary, the counting engine's wave expansion and
//! the slot engine's certified propagation must both deliver `Vtrue` to
//! every good node; and under attack both must preserve correctness.
//! The engines implement different protocols (threshold-acceptance vs
//! CPA), so only coverage/correctness — not message counts — are
//! comparable.

use bftbcast::prelude::*;

#[test]
fn both_engines_reach_everyone_without_attacks() {
    let s = Scenario::builder(15, 15, 1).faults(1, 5).build().unwrap();
    let counting = s.run_protocol_b(Adversary::Passive);
    let slot = s.run_reactive(8, 1 << 12, ReactiveAdversary::Passive, 1);
    assert!(counting.is_reliable());
    assert!(slot.is_reliable());
    assert_eq!(counting.good_nodes, slot.good_nodes);
    assert_eq!(counting.accepted_true, slot.committed_true);
}

#[test]
fn both_engines_reach_everyone_with_same_bad_set() {
    let s = Scenario::builder(15, 15, 1)
        .faults(1, 6)
        .random_placement(12, 9)
        .build()
        .unwrap();
    let counting = s.run_protocol_b(Adversary::Greedy);
    let slot = s.run_reactive(8, 1 << 12, ReactiveAdversary::Jammer, 2);
    assert!(counting.is_reliable(), "counting: {}", counting.coverage());
    assert!(slot.is_reliable(), "slot: {:?}", slot.uncommitted);
    assert_eq!(counting.accepted_true, slot.committed_true);
}

#[test]
fn engines_report_consistent_population() {
    let s = Scenario::builder(10, 10, 2)
        .faults(1, 3)
        .random_placement(5, 4)
        .build()
        .unwrap();
    let n_bad = s.bad_nodes().len();
    let counting = s.run_protocol_b(Adversary::Passive);
    let slot = s.run_reactive(8, 1 << 12, ReactiveAdversary::Passive, 3);
    assert_eq!(counting.good_nodes, 100 - n_bad);
    assert_eq!(slot.good_nodes, 100 - n_bad);
}
