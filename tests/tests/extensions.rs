//! Integration tests for the extension systems: faulty-source
//! agreement, crash-stop/hybrid faults, probabilistic placement, the
//! acceptance-rule ablation and SVG rendering — exercised together
//! through the public `bftbcast` API.

use bftbcast::adversary::{respects_local_bound, Placement};
use bftbcast::prelude::*;
use bftbcast::protocols::agreement::proven_member_cost;

/// Agreement feeds broadcast: a correct source's neighborhood agrees on
/// `Vtrue` in both modes, and the agreed value then survives the
/// strongest multi-hop adversary.
#[test]
fn agreement_then_broadcast_end_to_end() {
    let params = Params::new(2, 1, 10);
    let cfg = AgreementConfig::paper_margins(params);
    let grid = Grid::new(15, 15, 2).unwrap();
    let source = grid.id_at(7, 7);
    let colluders = vec![grid.id_at(7, 8)];
    for proven in [false, true] {
        let mut sim = AgreementSim::new(grid.clone(), cfg, source, &colluders);
        let out = if proven {
            sim.run_proven(SourceBehavior::Correct, SplitAttack::strongest())
        } else {
            sim.run(SourceBehavior::Correct, SplitAttack::strongest())
        };
        assert!(out.validity_holds() && out.agreement_holds());
        assert_eq!(out.decided_values(), vec![Value::TRUE]);
    }

    let s = Scenario::builder(20, 20, 2)
        .faults(1, 10)
        .lattice_placement()
        .build()
        .unwrap();
    assert!(s.run_protocol_b(Adversary::PerReceiverOracle).is_reliable());
}

/// The cheap mode's split window and the proven mode's immunity, as a
/// single cross-mode comparison at the documented parameters.
#[test]
fn cheap_splits_where_proven_does_not() {
    let params = Params::new(2, 1, 10);
    let cfg = AgreementConfig::paper_margins(params);
    let grid = Grid::new(15, 15, 2).unwrap();
    let source = grid.id_at(7, 7);
    let colluders = vec![grid.id_at(6, 8)];
    let mut cheap_split = false;
    for p1 in 0..=10 {
        for pe in 0..=10 {
            let attack = SplitAttack {
                value_a: Value(2),
                value_b: Value(3),
                phase1_fraction: f64::from(p1) / 10.0,
                echo_fraction: f64::from(pe) / 10.0,
            };
            let behavior = SourceBehavior::even_split(&cfg, Value(2), Value(3));
            let mut sim = AgreementSim::new(grid.clone(), cfg, source, &colluders);
            if !sim.run(behavior.clone(), attack).agreement_holds() {
                cheap_split = true;
            }
            let mut sim = AgreementSim::new(grid.clone(), cfg, source, &colluders);
            assert!(
                sim.run_proven(behavior, attack).agreement_holds(),
                "proven mode split at ({p1},{pe})"
            );
        }
    }
    assert!(cheap_split, "the split window is a documented finding");
    // And the price of immunity:
    assert!(proven_member_cost(params) > 20 * cfg.member_cost());
}

/// Crash and Byzantine engines agree with the counting engine where
/// they overlap: a Byzantine-only HybridSim run matches
/// CountingSim::run_oracle on the same placement.
#[test]
fn hybrid_engine_matches_counting_oracle_on_byzantine_only_loads() {
    let grid = Grid::new(20, 20, 2).unwrap();
    let p = Params::new(2, 1, 20);
    let bad = bftbcast::adversary::LatticePlacement::new(1)
        .bad_nodes(&grid)
        .into_iter()
        .filter(|&u| u != 0)
        .collect::<Vec<_>>();

    let proto = CountingProtocol::protocol_b(&grid, p);
    let mut counting = bftbcast::sim::CountingSim::new(grid.clone(), proto.clone(), 0, &bad, p.mf);
    let a = counting.run_oracle(p.mf);

    let mut hybrid = HybridSim::new(grid, proto, 0).with_byzantine_nodes(&bad);
    let b = hybrid.run(p.mf);

    assert_eq!(a.good_nodes, b.good_nodes);
    assert_eq!(a.accepted_true, b.accepted_true);
    assert_eq!(a.waves, b.waves);
    assert_eq!(a.adversary_spent, b.adversary_spent);
}

/// Crash faults below the disconnection threshold cost nothing extra:
/// budget-1 broadcast completes; at the threshold it cannot.
#[test]
fn crash_threshold_is_sharp_on_the_torus() {
    for r in [1u32, 2, 3] {
        let side = (2 * r + 1) * 3;
        let grid = Grid::new(side, side, r).unwrap();
        // Height r-1 leaks (r=1: empty barrier trivially leaks).
        if r > 1 {
            let mut dead = crash_stripe(&grid, side / 3, r - 1);
            dead.extend(crash_stripe(&grid, 2 * side / 3 + r, r - 1));
            dead.sort_unstable();
            dead.dedup();
            let mut sim = HybridSim::new(grid.clone(), crash_only_protocol(&grid), 0)
                .with_crash_nodes(&dead, CrashBehavior::Immediate);
            assert!(sim.run(0).is_complete(), "r={r}: height r-1 must leak");
        }
        // Height r blocks.
        let mut dead = crash_stripe(&grid, side / 3, r);
        dead.extend(crash_stripe(&grid, 2 * side / 3 + r, r));
        dead.sort_unstable();
        dead.dedup();
        let mut sim = HybridSim::new(grid.clone(), crash_only_protocol(&grid), 0)
            .with_crash_nodes(&dead, CrashBehavior::Immediate);
        let out = sim.run(0);
        assert!(!out.is_complete(), "r={r}: height r must disconnect");
        assert!(out.is_correct(), "crash faults never forge");
    }
}

/// Probabilistic placement composes with the scenario machinery: below
/// the critical rate the local bound holds on most seeds and protocol B
/// stays reliable; correctness holds on every seed regardless.
#[test]
fn bernoulli_corruption_below_critical_rate_is_survivable() {
    let grid = Grid::new(20, 20, 2).unwrap();
    let t = 2u32;
    let p_star = critical_p(400, 2, u64::from(t), 0.99);
    let params = Params::new(2, t, 10);
    let mut reliable = 0;
    for seed in 0..40u64 {
        let bad = BernoulliPlacement {
            p: p_star,
            seed,
            source: 0,
        }
        .bad_nodes(&grid);
        let proto = CountingProtocol::protocol_b(&grid, params);
        let mut sim = bftbcast::sim::CountingSim::new(grid.clone(), proto, 0, &bad, params.mf);
        let out = sim.run_oracle(params.mf);
        assert!(
            out.is_correct(),
            "seed {seed}: correctness must never break"
        );
        if out.is_reliable() {
            reliable += 1;
        }
    }
    assert!(
        reliable >= 36,
        "at p* expect ~99% reliability, got {reliable}/40"
    );
}

/// An overloaded neighborhood (local bound broken) can defeat the
/// provisioned budget — the deterministic guarantee really is
/// conditioned on the bound.
#[test]
fn overloaded_neighborhoods_can_stall_a_provisioned_protocol() {
    let grid = Grid::new(20, 20, 2).unwrap();
    let params = Params::new(2, 1, 10); // provisioned for t = 1
    let mut stalled_with_overload = false;
    for seed in 0..200u64 {
        let bad = BernoulliPlacement {
            p: 0.10,
            seed,
            source: 0,
        }
        .bad_nodes(&grid);
        let overloaded = !respects_local_bound(&grid, &bad, 1);
        let proto = CountingProtocol::protocol_b(&grid, params);
        let mut sim = bftbcast::sim::CountingSim::new(grid.clone(), proto, 0, &bad, params.mf);
        let out = sim.run_oracle(params.mf);
        if overloaded && !out.is_complete() {
            stalled_with_overload = true;
            break;
        }
    }
    assert!(
        stalled_with_overload,
        "10% corruption against a t=1 budget should stall some seed"
    );
}

/// The visualization layer renders real runs: counting-sim heat map and
/// a sweep chart, both well-formed SVG with the expected cell count.
#[test]
fn svg_rendering_from_real_runs() {
    let s = Scenario::builder(15, 15, 1)
        .faults(1, 4)
        .lattice_placement()
        .build()
        .unwrap();
    let proto = CountingProtocol::protocol_b(s.grid(), s.params());
    let mut sim = s.counting_sim(proto);
    let out = sim.run_oracle(s.params().mf);
    assert!(out.is_reliable());
    let svg = GridMap::from_counting_sim(&sim, s.source(), 10).render("t");
    assert_eq!(svg.matches("<rect").count(), 225);
    assert!(svg.contains("#1a1a1a"), "bad nodes must render");

    let mut chart = LineChart::new("coverage", "m", "fraction");
    let pts: Vec<(f64, f64)> = (1..=5)
        .map(|m| {
            let proto = CountingProtocol::starved(s.grid(), s.params(), m);
            let mut sim = s.counting_sim(proto);
            (m as f64, sim.run_oracle(s.params().mf).coverage())
        })
        .collect();
    chart.series("oracle", &pts);
    let svg = chart.render();
    assert!(svg.starts_with("<svg") && svg.contains("</svg>"));
    assert_eq!(svg.matches("<circle").count(), 5);
}

/// The majority-rule ablation end-to-end: same network, three rules,
/// the documented safety ordering.
#[test]
fn acceptance_rule_ordering_holds() {
    let s = Scenario::builder(20, 20, 2)
        .faults(1, 10)
        .lattice_placement()
        .build()
        .unwrap();
    let p = s.params();
    let tmf1 = 11u64;

    let threshold = s.run_protocol_b(Adversary::PerReceiverOracle);
    assert!(threshold.is_reliable());

    let proto = CountingProtocol::starved(s.grid(), p, tmf1);
    let mut sim = s.counting_sim(proto);
    let low = sim.run_majority_oracle(p.mf, tmf1);
    assert!(low.wrong_accepts > 0);

    let proto = CountingProtocol::starved(s.grid(), p, 2 * tmf1 - 1);
    let mut sim = s.counting_sim(proto);
    let high = sim.run_majority_oracle(p.mf, 2 * tmf1 - 1);
    assert!(high.is_correct());
    assert!(high.is_complete());
}
