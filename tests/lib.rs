//! Shared fixtures for the cross-crate integration tests (in `suites/`).

/// Deterministic seeds used across integration suites so failures are
/// reproducible from the test name alone.
pub const SEEDS: [u64; 4] = [7, 42, 1010, 0xDEADBEEF];
